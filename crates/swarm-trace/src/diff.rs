//! Run-to-run metric diffing and the committed regression baseline.
//!
//! A run's `metrics.json` is a serialized [`swarm_obs::Snapshot`]
//! delta. Most of it is timing and therefore machine-dependent; the
//! diff gate only looks at the *deterministic* counters — the engine
//! and simulator event counts that a fixed seed pins exactly
//! ([`is_deterministic`]). Two runs of the same code on the same
//! configs must agree on those to the last event; a change in
//! `bt.ticks` or `sim.completions` means behavior changed, not the
//! machine.
//!
//! Two comparison modes share [`DiffReport`]:
//!
//! * [`diff`] — A vs. B, two runs, one default threshold plus
//!   per-metric overrides ([`Thresholds`]).
//! * [`Baseline::check`] — current run vs. a committed baseline file
//!   (`BENCH_trace_baseline.json`), each metric carrying its own
//!   `max_rel`. CI fails when any relative delta exceeds its bound or
//!   a baselined metric disappears.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use swarm_obs::Snapshot;

/// Is this metric expected to be bit-identical across machines for a
/// fixed seed? Engine/simulator/Monte-Carlo counters are, as are the
/// catalog runtime's shard-batched counters (integer sums over
/// per-swarm RNG streams, invariant in shard count and steal order) and
/// the live network engine's `net.*` counters (barrier-fenced virtual
/// time, `(sender, seq)`-ordered delivery — thread-order invariant by
/// construction); anything timing-derived (`*_ns`, `*_ms`) or
/// scheduler-dependent (`lab.*`, `stats.*`, `span.*`, gauges) is not.
/// The live engine keeps its wall-clock/scheduling metrics under
/// `stats.net.*` with `_ns` suffixes, so they never enter this domain.
pub fn is_deterministic(name: &str) -> bool {
    let deterministic_domain = ["bt.", "sim.", "mc.", "catalog.", "net."]
        .iter()
        .any(|p| name.starts_with(p));
    deterministic_domain && !name.ends_with("_ns") && !name.ends_with("_ms")
}

/// The counter stems compared between the simulator and the live
/// network engine: `bt.<stem>` must equal `net.<stem>` *exactly* on the
/// scripted equivalence scenarios. These are the counters the scenario
/// construction pins (scripted arrivals, schedule-driven publisher,
/// drain-free horizon); byte totals and message counts are engine-shaped
/// and deliberately excluded.
pub const SIM_VS_LIVE_STEMS: [&str; 4] = [
    "ticks",
    "arrivals",
    "completions",
    "availability.transitions",
];

/// Pair `bt.<stem>` against `net.<stem>` within one run's metrics and
/// require exact equality. A missing side is a failure: the gate must
/// not silently pass because one engine didn't run.
pub fn sim_vs_live(metrics: &BTreeMap<String, f64>) -> DiffReport {
    let mut report = DiffReport::default();
    for stem in SIM_VS_LIVE_STEMS {
        let sim_name = format!("bt.{stem}");
        let live_name = format!("net.{stem}");
        match (metrics.get(&sim_name), metrics.get(&live_name)) {
            (Some(&a), Some(&b)) => {
                let rel = rel_delta(a, b);
                report.entries.push(DiffEntry {
                    name: format!("{sim_name} vs {live_name}"),
                    a,
                    b,
                    rel,
                    max_rel: 0.0,
                    regressed: rel != 0.0,
                });
            }
            (sim, live) => {
                if sim.is_none() {
                    report.missing.push(sim_name);
                }
                if live.is_none() {
                    report.missing.push(live_name);
                }
            }
        }
    }
    report
}

/// Extract the deterministic counters from a snapshot delta.
pub fn deterministic_metrics(snap: &Snapshot) -> BTreeMap<String, f64> {
    snap.counters
        .iter()
        .filter(|(k, _)| is_deterministic(k))
        .map(|(k, &v)| (k.clone(), v as f64))
        .collect()
}

/// Relative delta of `b` against `a`: `(b-a)/|a|`, infinite when a
/// metric appears from zero.
pub fn rel_delta(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 {
        f64::INFINITY
    } else {
        (b - a) / a.abs()
    }
}

/// Per-metric relative-delta bounds for [`diff`].
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Bound applied when no override matches. Deterministic counters
    /// warrant 0.0 (exact).
    pub default_max_rel: f64,
    /// `--metric NAME=R` overrides.
    pub per_metric: BTreeMap<String, f64>,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            default_max_rel: 0.0,
            per_metric: BTreeMap::new(),
        }
    }
}

impl Thresholds {
    pub fn max_rel_for(&self, name: &str) -> f64 {
        self.per_metric
            .get(name)
            .copied()
            .unwrap_or(self.default_max_rel)
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    pub name: String,
    pub a: f64,
    pub b: f64,
    pub rel: f64,
    pub max_rel: f64,
    /// `|rel| > max_rel` — deviation in either direction counts; a
    /// "speedup" in an event counter is as suspicious as a slowdown.
    pub regressed: bool,
}

/// Outcome of a comparison: per-metric entries plus the metrics only
/// one side had.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    pub entries: Vec<DiffEntry>,
    /// In A/baseline but missing from B/current — always a failure.
    pub missing: Vec<String>,
    /// In B/current only — reported, never failing (new
    /// instrumentation must not break old baselines).
    pub extra: Vec<String>,
}

impl DiffReport {
    /// Number of failing metrics (threshold breaches plus missing).
    pub fn regressions(&self) -> usize {
        self.entries.iter().filter(|e| e.regressed).count() + self.missing.len()
    }

    pub fn ok(&self) -> bool {
        self.regressions() == 0
    }

    /// Human-readable table; `verbose` includes passing metrics.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>14} {:>14} {:>10} {:>9}  status\n",
            "metric", "a", "b", "rel", "max_rel"
        ));
        for e in &self.entries {
            if !verbose && !e.regressed {
                continue;
            }
            let rel = if e.rel.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:+.4}", e.rel)
            };
            out.push_str(&format!(
                "{:<32} {:>14.1} {:>14.1} {:>10} {:>9.4}  {}\n",
                e.name,
                e.a,
                e.b,
                rel,
                e.max_rel,
                if e.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<32} missing from current run  REGRESSED\n"));
        }
        for name in &self.extra {
            out.push_str(&format!("{name:<32} new metric (not in baseline)\n"));
        }
        let n = self.regressions();
        out.push_str(&format!(
            "{} metric(s) compared, {} regression(s)\n",
            self.entries.len(),
            n
        ));
        out
    }
}

/// Compare run B against run A under `thresholds`.
pub fn diff(
    a: &BTreeMap<String, f64>,
    b: &BTreeMap<String, f64>,
    thresholds: &Thresholds,
) -> DiffReport {
    let mut report = DiffReport::default();
    for (name, &va) in a {
        match b.get(name) {
            Some(&vb) => {
                let rel = rel_delta(va, vb);
                let max_rel = thresholds.max_rel_for(name);
                report.entries.push(DiffEntry {
                    name: name.clone(),
                    a: va,
                    b: vb,
                    rel,
                    max_rel,
                    regressed: rel.abs() > max_rel,
                });
            }
            None => report.missing.push(name.clone()),
        }
    }
    for name in b.keys() {
        if !a.contains_key(name) {
            report.extra.push(name.clone());
        }
    }
    report
}

/// One baselined metric: the expected value and its tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineMetric {
    pub value: f64,
    /// Maximum tolerated `|rel_delta|` against `value`.
    pub max_rel: f64,
}

/// The committed regression baseline (`BENCH_trace_baseline.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// What produced it (suite, flags) — documentation, not compared.
    pub description: String,
    /// Whether the producing run used `--quick`.
    pub quick: bool,
    pub metrics: BTreeMap<String, BaselineMetric>,
}

impl Baseline {
    /// Build a baseline from a run's deterministic metrics, every
    /// metric tolerating `max_rel`.
    pub fn from_metrics(
        metrics: &BTreeMap<String, f64>,
        description: impl Into<String>,
        quick: bool,
        max_rel: f64,
    ) -> Baseline {
        Baseline {
            description: description.into(),
            quick,
            metrics: metrics
                .iter()
                .map(|(k, &value)| (k.clone(), BaselineMetric { value, max_rel }))
                .collect(),
        }
    }

    /// Compare a current run against this baseline.
    pub fn check(&self, current: &BTreeMap<String, f64>) -> DiffReport {
        let expected: BTreeMap<String, f64> = self
            .metrics
            .iter()
            .map(|(k, m)| (k.clone(), m.value))
            .collect();
        let mut thresholds = Thresholds::default();
        for (k, m) in &self.metrics {
            thresholds.per_metric.insert(k.clone(), m.max_rel);
        }
        diff(&expected, current, &thresholds)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serializes")
    }

    pub fn from_json(s: &str) -> Result<Baseline, String> {
        serde_json::from_str(s).map_err(|e| format!("baseline parse error: {e}"))
    }
}

/// Parse a `metrics.json` file (a serialized snapshot delta) into its
/// deterministic counters.
pub fn load_metrics_json(s: &str) -> Result<BTreeMap<String, f64>, String> {
    let snap: Snapshot =
        serde_json::from_str(s).map_err(|e| format!("metrics.json parse error: {e}"))?;
    Ok(deterministic_metrics(&snap))
}
