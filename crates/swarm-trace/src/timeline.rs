//! Per-run availability timelines from engine telemetry.
//!
//! The `swarm-bt` engine emits, while recording is on:
//!
//! * one `bt.run.start` event carrying the run ordinal and the config
//!   summary (bundle size, arrival rate, publisher process, effective
//!   peer upload rate),
//! * a `bt.availability` event per availability *transition* (sparse —
//!   the step function is exact, not sampled),
//! * a `bt.tick` sample every [`TICK_EVENT_SAMPLE`]: online peers,
//!   blocked leechers, coverage, minimum replication,
//! * one `bt.run.end` event with the engine's own availability figure.
//!
//! [`collect_runs`] groups a drained event stream back into
//! [`BtRunTrace`]s keyed on the run ordinal (replication seeds collide
//! across sweep points, ordinals never do). From the transition list
//! the trace reconstructs the full availability step function, so the
//! measured unavailable fraction and the busy/idle period lengths come
//! out exact. [`BtRunTrace::model_check`] then maps the run's config
//! onto the paper's Table-1 parameters and compares the trace against
//! `swarm_core::patient` — the model-vs-trace validation loop.

use serde_json::Value;
use std::collections::BTreeMap;
use swarm_core::{patient, SwarmParams};
use swarm_obs::Event;

/// Event-sampling stride of `bt.tick` (mirrors the engine constant).
pub const TICK_EVENT_SAMPLE: u64 = 64;

fn field<'a>(e: &'a Event, key: &str) -> Option<&'a Value> {
    e.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn f64_field(e: &Event, key: &str) -> Option<f64> {
    field(e, key)?.as_f64()
}

fn u64_field(e: &Event, key: &str) -> Option<u64> {
    field(e, key)?.as_u64()
}

/// Config summary carried by `bt.run.start`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// Process-wide run ordinal (the grouping key).
    pub run: u64,
    /// Bundle size K.
    pub k: u64,
    /// Per-file size (kB).
    pub file_size: f64,
    pub pieces: u64,
    /// Total peer arrival rate (peers/s) — the model's λ.
    pub arrival_rate: f64,
    /// Arrival window (ticks).
    pub horizon: u64,
    pub drain_ticks: u64,
    pub seed: u64,
    /// `"always_on"`, `"on_off"` or `"until_first_completion"`.
    pub publisher: String,
    /// Mean publisher on-time (s); 0 unless `on_off` — the model's u.
    pub on_mean: f64,
    /// Mean publisher off-time (s); 0 unless `on_off` — the model's 1/r.
    pub off_mean: f64,
    /// Capped mean peer upload rate (kB/s) — the model's μ.
    pub peer_upload_mean: f64,
}

impl RunInfo {
    fn from_event(e: &Event) -> Option<RunInfo> {
        Some(RunInfo {
            run: u64_field(e, "run")?,
            k: u64_field(e, "k")?,
            file_size: f64_field(e, "file_size")?,
            pieces: u64_field(e, "pieces")?,
            arrival_rate: f64_field(e, "arrival_rate")?,
            horizon: u64_field(e, "horizon")?,
            drain_ticks: u64_field(e, "drain_ticks").unwrap_or(0),
            seed: u64_field(e, "seed")?,
            publisher: field(e, "publisher")?.as_str()?.to_string(),
            on_mean: f64_field(e, "on_mean").unwrap_or(0.0),
            off_mean: f64_field(e, "off_mean").unwrap_or(0.0),
            peer_upload_mean: f64_field(e, "peer_upload_mean")?,
        })
    }
}

/// One strided `bt.tick` sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickSample {
    pub tick: u64,
    pub online: u64,
    pub blocked: u64,
    pub covered: u64,
    pub min_replication: u64,
    pub publisher_on: bool,
}

/// One availability transition (the step function's corner points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flip {
    pub tick: u64,
    pub available: bool,
}

/// Engine-side summary carried by `bt.run.end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEnd {
    /// Availability fraction over the arrival window, as the engine
    /// itself computed it — the reconstruction cross-check.
    pub availability: f64,
    pub completions: u64,
    pub last_available_tick: u64,
}

/// A contiguous interval of constant availability state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First tick of the interval.
    pub start: u64,
    /// One past the last tick (half-open).
    pub end: u64,
    pub available: bool,
}

impl Segment {
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Everything one engine run left in the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct BtRunTrace {
    /// `None` when the `bt.run.start` line was evicted from the ring
    /// before the drain (the rest of the trace is still usable).
    pub info: Option<RunInfo>,
    /// Job label the run executed under, if any.
    pub job: Option<String>,
    pub run: u64,
    pub ticks: Vec<TickSample>,
    pub flips: Vec<Flip>,
    pub end: Option<RunEnd>,
}

impl BtRunTrace {
    fn new(run: u64) -> BtRunTrace {
        BtRunTrace {
            info: None,
            job: None,
            run,
            ticks: Vec::new(),
            flips: Vec::new(),
            end: None,
        }
    }

    /// End of the observed window: the horizon when known, else one
    /// past the last event tick.
    pub fn window_end(&self) -> u64 {
        if let Some(info) = &self.info {
            return info.horizon;
        }
        let last_tick = self.ticks.last().map(|t| t.tick).unwrap_or(0);
        let last_flip = self.flips.last().map(|f| f.tick).unwrap_or(0);
        last_tick.max(last_flip) + 1
    }

    /// The availability step function over `[0, window_end)`, as
    /// maximal constant segments. Empty when no transition was seen.
    pub fn segments(&self) -> Vec<Segment> {
        let end = self.window_end();
        let mut out = Vec::new();
        for (i, flip) in self.flips.iter().enumerate() {
            let seg_end = self
                .flips
                .get(i + 1)
                .map(|n| n.tick)
                .unwrap_or(end)
                .min(end);
            if flip.tick < seg_end {
                out.push(Segment {
                    start: flip.tick,
                    end: seg_end,
                    available: flip.available,
                });
            }
        }
        out
    }

    /// Fraction of the arrival window the content was *unavailable* —
    /// by PASTA this is also the probability an arriving peer finds it
    /// unavailable, the paper's P. `None` without any transition event.
    pub fn unavailable_fraction(&self) -> Option<f64> {
        let end = self.window_end();
        if end == 0 || self.flips.is_empty() {
            return None;
        }
        let unavailable: u64 = self
            .segments()
            .iter()
            .filter(|s| !s.available)
            .map(Segment::len)
            .sum();
        Some(unavailable as f64 / end as f64)
    }

    /// Completed busy periods: available segments that both start and
    /// end strictly inside the window (censored edge segments would
    /// bias the mean down).
    pub fn busy_periods(&self) -> Vec<Segment> {
        let end = self.window_end();
        self.segments()
            .into_iter()
            .filter(|s| s.available && s.end < end)
            .collect()
    }

    /// Mean completed busy-period length in ticks, when any completed.
    pub fn mean_busy_period(&self) -> Option<f64> {
        let periods = self.busy_periods();
        if periods.is_empty() {
            return None;
        }
        Some(periods.iter().map(|s| s.len() as f64).sum::<f64>() / periods.len() as f64)
    }

    /// Map this run's config onto the paper's Table-1 parameters.
    /// `None` unless the publisher is the §4.3 on/off process (the
    /// closed forms model exponential publisher churn; an always-on
    /// publisher has nothing to validate).
    pub fn model_params(&self) -> Option<SwarmParams> {
        let info = self.info.as_ref()?;
        if info.publisher != "on_off" || info.off_mean <= 0.0 || info.on_mean <= 0.0 {
            return None;
        }
        Some(SwarmParams {
            lambda: info.arrival_rate,
            size: info.k as f64 * info.file_size,
            mu: info.peer_upload_mean,
            r: 1.0 / info.off_mean,
            u: info.on_mean,
        })
    }

    /// Model-vs-trace validation: the closed-form unavailability and
    /// busy period against what this trace measured.
    pub fn model_check(&self) -> Option<ModelCheck> {
        let params = self.model_params()?;
        let trace_unavailability = self.unavailable_fraction()?;
        Some(ModelCheck {
            model_unavailability: patient::unavailability(&params),
            trace_unavailability,
            model_busy_period: patient::busy_period(&params),
            trace_mean_busy_period: self.mean_busy_period(),
            params,
        })
    }

    /// Render the availability step function as a fixed-width strip:
    /// `#` fully available, `.` fully unavailable, `+` mixed, `?` not
    /// observed. One cell covers `window_end / width` ticks.
    pub fn ascii_timeline(&self, width: usize) -> String {
        let end = self.window_end();
        let width = width.max(1);
        if end == 0 || self.flips.is_empty() {
            return "?".repeat(width);
        }
        let segments = self.segments();
        let mut out = String::with_capacity(width);
        for cell in 0..width {
            let c_start = cell as u64 * end / width as u64;
            let c_end = ((cell as u64 + 1) * end / width as u64).max(c_start + 1);
            let mut avail = 0u64;
            let mut covered = 0u64;
            for s in &segments {
                let lo = s.start.max(c_start);
                let hi = s.end.min(c_end);
                if lo < hi {
                    covered += hi - lo;
                    if s.available {
                        avail += hi - lo;
                    }
                }
            }
            out.push(if covered == 0 {
                '?'
            } else if avail == covered {
                '#'
            } else if avail == 0 {
                '.'
            } else {
                '+'
            });
        }
        out
    }
}

/// Closed-form prediction vs. trace measurement for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCheck {
    /// The Table-1 parameters the run mapped onto.
    pub params: SwarmParams,
    /// `swarm_core::patient::unavailability` — the predicted P.
    pub model_unavailability: f64,
    /// Fraction of the window the trace was unavailable.
    pub trace_unavailability: f64,
    /// `swarm_core::patient::busy_period` — the predicted E[B] (s).
    pub model_busy_period: f64,
    /// Mean completed available period in the trace (ticks = s), when
    /// any busy period completed inside the window.
    pub trace_mean_busy_period: Option<f64>,
    // The trace exceeding the model here is expected physics, not a
    // bug: peers keep content available after the publisher leaves, so
    // measured busy periods are stochastically longer than the
    // publisher-only on-time — exactly the paper's swarm-sustained
    // availability effect.
}

impl ModelCheck {
    /// Absolute error of the unavailability prediction.
    pub fn abs_error(&self) -> f64 {
        (self.model_unavailability - self.trace_unavailability).abs()
    }
}

/// Group a drained event stream into per-run traces, ordered by run
/// ordinal. Events without a `run` field are ignored; a trace whose
/// `bt.run.start` was evicted still collects ticks and flips.
pub fn collect_runs(events: &[Event]) -> Vec<BtRunTrace> {
    let mut runs: BTreeMap<u64, BtRunTrace> = BTreeMap::new();
    for e in events {
        let Some(run) = u64_field(e, "run") else {
            continue;
        };
        let trace = runs.entry(run).or_insert_with(|| BtRunTrace::new(run));
        if trace.job.is_none() {
            trace.job = e.job.clone();
        }
        match e.kind.as_str() {
            "bt.run.start" => trace.info = RunInfo::from_event(e),
            "bt.tick" => {
                if let (Some(tick), Some(online), Some(blocked), Some(covered), Some(min_rep)) = (
                    u64_field(e, "tick"),
                    u64_field(e, "online"),
                    u64_field(e, "blocked"),
                    u64_field(e, "covered"),
                    u64_field(e, "min_replication"),
                ) {
                    trace.ticks.push(TickSample {
                        tick,
                        online,
                        blocked,
                        covered,
                        min_replication: min_rep,
                        publisher_on: field(e, "publisher_on")
                            .and_then(Value::as_bool)
                            .unwrap_or(false),
                    });
                }
            }
            "bt.availability" => {
                if let (Some(tick), Some(available)) = (
                    u64_field(e, "tick"),
                    field(e, "available").and_then(Value::as_bool),
                ) {
                    trace.flips.push(Flip { tick, available });
                }
            }
            "bt.run.end" => {
                trace.end = Some(RunEnd {
                    availability: f64_field(e, "availability").unwrap_or(0.0),
                    completions: u64_field(e, "completions").unwrap_or(0),
                    last_available_tick: u64_field(e, "last_available_tick").unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    // Transitions can arrive out of order only if two drains were
    // concatenated; sort defensively, ticks likewise.
    let mut out: Vec<BtRunTrace> = runs.into_values().collect();
    for t in &mut out {
        t.flips.sort_by_key(|f| f.tick);
        t.ticks.sort_by_key(|s| s.tick);
    }
    out
}
