//! Offline analysis of `swarm-obs` telemetry.
//!
//! The orchestrator ([`swarm-lab`]) writes one `telemetry.jsonl` per
//! job plus run-level `metrics.json` summaries; this crate turns those
//! artifacts back into answers:
//!
//! * [`timeline`] — groups the engine's `bt.run.start` / `bt.tick` /
//!   `bt.availability` / `bt.run.end` events into per-run
//!   [`timeline::BtRunTrace`]s, reconstructs the availability step
//!   function, extracts busy/idle periods, and cross-checks the
//!   trace-measured unavailability against the `swarm-core` closed
//!   forms (model-vs-trace validation, §4.3 of the paper).
//! * [`flame`] — folds `"span"` events into collapsed-stack lines
//!   (`a;b;c <self-µs>`), the input format of inferno's
//!   `flamegraph.pl` work-alikes and speedscope.
//! * [`diff`] — compares the deterministic counters of two runs'
//!   `metrics.json` (or a run against a committed baseline) under
//!   per-metric relative-delta thresholds; the regression gate behind
//!   `repro diff` and the `trace-regression` CI job.
//! * [`net`] — reconstructs per-connection message timelines from the
//!   live engine's `net.conn`/`net.req`/`net.xfer` lifecycle events
//!   (both endpoints merged), checks the wire-level conservation
//!   invariants, and renders swimlanes plus collapsed message stacks;
//!   the analysis behind `repro net-report` and the net-live CI gate.
//! * [`timeseries`] — trend analysis over `timeseries.jsonl` (the
//!   recorder windows a run wrote): per-window rates, dip/stall episode
//!   detection, the windowed-availability cross-check against the event
//!   timeline, and the trend baseline behind `repro diff --timeseries`.
//! * [`cli`] — the `repro trace` / `repro diff` / `repro net-report`
//!   entry points.
//!
//! Everything here is read-only over artifacts on disk: the analysis
//! runs in a different process (often on a different machine) than the
//! experiments, correlated through the `{"kind":"header"}` line
//! (`run_id`, `ts_unix_ms`) heading every telemetry file.

pub mod cli;
pub mod diff;
pub mod flame;
pub mod net;
pub mod timeline;
pub mod timeseries;

pub use diff::{Baseline, DiffReport, Thresholds};
pub use flame::collapse_spans;
pub use net::{collect_net_runs, ConnRecord, HealthSample, NetRunTrace, StallSample};
pub use timeline::{collect_runs, BtRunTrace, ModelCheck};
pub use timeseries::{
    availability_crosscheck, diff_series, is_deterministic_series, load_timeseries, series_digest,
    CrossCheck, Episode, SeriesAnalysis, TsBaseline, TsSeriesBaseline, DIP_THRESHOLD,
};
