//! Per-connection message timelines from live-swarm telemetry.
//!
//! The live engine (`swarm-net`) emits typed lifecycle events — see
//! `swarm_obs::lifecycle` — from *both* endpoints of every connection:
//! connection transitions (`net.conn`), request lifecycles (`net.req`)
//! and transfer milestones (`net.xfer`), plus the TCP host's periodic
//! `net.health` snapshots and `net.stall` watchdog firings.
//! [`collect_net_runs`] groups a drained event stream by run ordinal
//! and folds both endpoints' views of each peer pair into one
//! [`ConnRecord`] timeline.
//!
//! The analyzer then checks the wire-level **conservation invariants**
//! every healthy run must satisfy:
//!
//! 1. *Handshake pairing* — any connection that carried request or
//!    transfer traffic must have completed a handshake at **both**
//!    endpoints. (Half-open connections with no traffic are reported,
//!    not violations: a refused handshake legitimately leaves one.)
//! 2. *Request resolution* — per requester, every issued request
//!    (`req.tx`) must resolve: a `cancel` (timeout/done), a `choked`
//!    clear, or a piece completion (`xfer.done`) at that endpoint.
//!    Closing a request that was never open is a violation
//!    (`cancel[done]` excepted — it trails the completion that already
//!    settled the request), as is a request still open when the stream
//!    ends. A `done` with no open request is legal — a late piece
//!    frame can land after a choke cleared the request state.
//! 3. *Piece conservation* — every completion (`xfer.done` at the
//!    receiver) must match a service start (`xfer.serve`) at the
//!    serving endpoint for the same piece. Existence only: under the
//!    TCP host each thread runs its own wall ticker, so cross-endpoint
//!    tick comparisons are deliberately avoided.
//!
//! Violations are strings naming the connection and piece — rendered
//! by `repro net-report`, which exits non-zero when any exist.

use std::collections::BTreeMap;

use serde_json::Value;
use swarm_obs::{ConnEvent, Event, ReqEvent, ReqPhase, XferEvent, XferPhase};

use crate::flame::FlameLine;

fn field<'a>(e: &'a Event, key: &str) -> Option<&'a Value> {
    e.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn u64_field(e: &Event, key: &str) -> Option<u64> {
    field(e, key)?.as_u64()
}

/// One entry of a connection's merged two-endpoint timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Tick at the *observing* endpoint (virtual under loopback, that
    /// endpoint's wall tick under TCP).
    pub tick: u64,
    /// Endpoint that recorded the entry.
    pub local: u64,
    /// The other endpoint.
    pub remote: u64,
    /// `kind.phase`, e.g. `conn.handshake`, `req.tx`, `xfer.done`.
    pub what: String,
    /// Piece number, when one is involved.
    pub piece: Option<u64>,
}

/// Both endpoints' merged view of one peer pair within a run.
#[derive(Debug, Clone, Default)]
pub struct ConnRecord {
    /// Lower endpoint id of the pair.
    pub a: u64,
    /// Higher endpoint id of the pair.
    pub b: u64,
    /// Merged timeline in emission order (per-endpoint order is exact;
    /// cross-endpoint interleaving follows the sink).
    pub timeline: Vec<TimelineEntry>,
    /// Endpoints (of this pair) that recorded a completed handshake.
    pub handshaken: Vec<u64>,
    /// Requests issued (`req.tx`) on this connection, either direction.
    pub requests: u64,
    /// Service episodes started (`xfer.serve`).
    pub serves: u64,
    /// Pieces completed (`xfer.done`).
    pub dones: u64,
    /// Request→piece latencies (ticks) attributed to this connection,
    /// from `xfer.done` events that carried one.
    pub latencies: Vec<u64>,
}

impl ConnRecord {
    /// Did this connection carry request or transfer traffic?
    pub fn has_traffic(&self) -> bool {
        self.requests > 0 || self.serves > 0 || self.dones > 0
    }

    /// Exact latency quantile from the recorded (sorted) samples via
    /// nearest rank; `None` when no `done` carried a latency.
    pub fn latency_quantile(&self, q: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }
}

/// A `net.health` snapshot from one TCP peer thread.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSample {
    pub tick: u64,
    pub peer: u64,
    pub pieces: u64,
    pub bytes_kb: f64,
    pub neighbors: u64,
    pub online: bool,
    pub stalled: bool,
}

/// A `net.stall` watchdog firing.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSample {
    pub tick: u64,
    pub peer: u64,
    /// Ticks without byte progress when the watchdog fired.
    pub since: u64,
}

/// One live run's reconstructed wire-level view.
#[derive(Debug, Clone, Default)]
pub struct NetRunTrace {
    /// Run ordinal (`net.run.start` / lifecycle `run` field).
    pub run: u64,
    /// Connections keyed by unordered endpoint pair.
    pub conns: BTreeMap<(u64, u64), ConnRecord>,
    /// Health snapshots in emission order (TCP host only).
    pub health: Vec<HealthSample>,
    /// Stall watchdog firings (TCP host only).
    pub stalls: Vec<StallSample>,
    /// Conservation-invariant violations found while collecting.
    pub violations: Vec<String>,
}

fn pair(x: u64, y: u64) -> (u64, u64) {
    (x.min(y), x.max(y))
}

impl NetRunTrace {
    fn conn(&mut self, x: u64, y: u64) -> &mut ConnRecord {
        let (a, b) = pair(x, y);
        let rec = self.conns.entry((a, b)).or_default();
        rec.a = a;
        rec.b = b;
        rec
    }

    /// All latency samples across connections, sorted.
    pub fn latencies(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .conns
            .values()
            .flat_map(|c| c.latencies.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Total pieces completed across connections.
    pub fn completions(&self) -> u64 {
        self.conns.values().map(|c| c.dones).sum()
    }

    /// Connections that saw traffic but no handshake on one side —
    /// informational only (see module docs).
    pub fn half_open(&self) -> usize {
        self.conns
            .values()
            .filter(|c| !c.has_traffic() && c.handshaken.len() < 2 && !c.timeline.is_empty())
            .count()
    }

    /// Per-connection swimlane text: one lane per connection, both
    /// endpoints' entries merged, ticks left-aligned per endpoint.
    pub fn swimlane(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("run {}\n", self.run));
        for ((a, b), conn) in &self.conns {
            out.push_str(&format!(
                "conn {a}<->{b}: {} request(s), {} serve(s), {} completion(s)\n",
                conn.requests, conn.serves, conn.dones
            ));
            for e in &conn.timeline {
                let piece = e.piece.map(|p| format!(" piece {p}")).unwrap_or_default();
                // The lane shows who observed the entry: `a`-side
                // entries left of the bar, `b`-side right of it.
                let lane = if e.local == *a {
                    format!("{:<24}|", format!("{} {}{piece}", e.tick, e.what))
                } else {
                    format!("{:<24}|  {} {}{piece}", "", e.tick, e.what)
                };
                out.push_str(&format!("  {lane}\n"));
            }
        }
        out
    }

    /// Collapsed message-count stacks (`net;conn a-b;kind.phase N`) —
    /// flamegraph-compatible, one sample per message.
    pub fn collapsed(&self) -> Vec<FlameLine> {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for ((a, b), conn) in &self.conns {
            for e in &conn.timeline {
                *folded
                    .entry(format!("net;conn {a}-{b};{}", e.what))
                    .or_insert(0) += 1;
            }
        }
        folded
            .into_iter()
            .map(|(stack, n)| FlameLine { stack, self_us: n })
            .collect()
    }
}

/// Tracks open requests per requester while collecting, to resolve
/// invariant 2 in stream order.
#[derive(Default)]
struct OpenRequests {
    /// (requester, server, piece) → open request count.
    open: BTreeMap<(u64, u64, u64), u64>,
}

impl OpenRequests {
    fn open(&mut self, local: u64, remote: u64, piece: u64) {
        *self.open.entry((local, remote, piece)).or_insert(0) += 1;
    }

    /// Close the matching request; `false` when none was open.
    fn close(&mut self, local: u64, remote: u64, piece: u64) -> bool {
        match self.open.get_mut(&(local, remote, piece)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// A completion at `local` for `piece` settles every outstanding
    /// request that endpoint has for the piece, against any server
    /// (the cancel fan-out travels as frames; the local state clears
    /// immediately).
    fn close_all(&mut self, local: u64, piece: u64) {
        for ((l, _, p), n) in self.open.iter_mut() {
            if *l == local && *p == piece {
                *n = 0;
            }
        }
    }

    fn leftovers(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.open.iter().filter(|(_, &n)| n > 0).map(|(&k, _)| k)
    }
}

/// Group lifecycle + health telemetry into per-run traces and check
/// the conservation invariants. Runs come back ordered by ordinal.
pub fn collect_net_runs(events: &[Event]) -> Vec<NetRunTrace> {
    let mut runs: BTreeMap<u64, NetRunTrace> = BTreeMap::new();
    let mut open: BTreeMap<u64, OpenRequests> = BTreeMap::new();
    // (run, server, receiver, piece) → serve seen / done count.
    let mut serves: BTreeMap<(u64, u64, u64, u64), u64> = BTreeMap::new();
    let mut dones: Vec<(u64, u64, u64, u64)> = Vec::new();

    for e in events {
        if let Some(c) = ConnEvent::from_event(e) {
            let trace = runs.entry(c.run).or_insert_with(|| NetRunTrace {
                run: c.run,
                ..NetRunTrace::default()
            });
            let conn = trace.conn(c.local, c.remote);
            if c.phase == swarm_obs::ConnPhase::Handshake && !conn.handshaken.contains(&c.local) {
                conn.handshaken.push(c.local);
            }
            let what = match c.dir {
                Some(d) => format!("conn.{}.{}", c.phase.as_str(), d.as_str()),
                None => format!("conn.{}", c.phase.as_str()),
            };
            conn.timeline.push(TimelineEntry {
                tick: c.tick,
                local: c.local,
                remote: c.remote,
                what,
                piece: c.piece,
            });
        } else if let Some(r) = ReqEvent::from_event(e) {
            let trace = runs.entry(r.run).or_insert_with(|| NetRunTrace {
                run: r.run,
                ..NetRunTrace::default()
            });
            let reqs = open.entry(r.run).or_default();
            match r.phase {
                ReqPhase::Tx => reqs.open(r.local, r.remote, r.piece),
                ReqPhase::Cancel | ReqPhase::Choked => {
                    let closed = reqs.close(r.local, r.remote, r.piece);
                    // A `cancel[done]` is the wire echo of a completion
                    // that already settled every open request for the
                    // piece (the `xfer.done` is emitted first), so a
                    // zero-open close is legal there — and only there.
                    let done_echo =
                        r.phase == ReqPhase::Cancel && r.reason.as_deref() == Some("done");
                    if !closed && !done_echo {
                        trace.violations.push(format!(
                            "req.{} at peer {} for piece {} from {} without an open request",
                            r.phase.as_str(),
                            r.local,
                            r.piece,
                            r.remote
                        ));
                    }
                }
                ReqPhase::Rx => {}
            }
            let conn = trace.conn(r.local, r.remote);
            if r.phase == ReqPhase::Tx {
                conn.requests += 1;
            }
            let what = match &r.reason {
                Some(reason) => format!("req.{}[{reason}]", r.phase.as_str()),
                None => format!("req.{}", r.phase.as_str()),
            };
            conn.timeline.push(TimelineEntry {
                tick: r.tick,
                local: r.local,
                remote: r.remote,
                what,
                piece: Some(r.piece),
            });
        } else if let Some(x) = XferEvent::from_event(e) {
            let trace = runs.entry(x.run).or_insert_with(|| NetRunTrace {
                run: x.run,
                ..NetRunTrace::default()
            });
            match x.phase {
                XferPhase::Serve => {
                    // `local` is the server, `remote` the requester.
                    *serves
                        .entry((x.run, x.local, x.remote, x.piece))
                        .or_insert(0) += 1;
                }
                XferPhase::Done => {
                    // `local` is the receiver, `remote` the server.
                    dones.push((x.run, x.remote, x.local, x.piece));
                    open.entry(x.run).or_default().close_all(x.local, x.piece);
                }
            }
            let conn = trace.conn(x.local, x.remote);
            match x.phase {
                XferPhase::Serve => conn.serves += 1,
                XferPhase::Done => {
                    conn.dones += 1;
                    if let Some(l) = x.latency_ticks {
                        conn.latencies.push(l);
                    }
                }
            }
            conn.timeline.push(TimelineEntry {
                tick: x.tick,
                local: x.local,
                remote: x.remote,
                what: format!("xfer.{}", x.phase.as_str()),
                piece: Some(x.piece),
            });
        } else if e.kind == "net.health" {
            let (Some(run), Some(tick), Some(peer)) = (
                u64_field(e, "run"),
                u64_field(e, "tick"),
                u64_field(e, "peer"),
            ) else {
                continue;
            };
            runs.entry(run)
                .or_insert_with(|| NetRunTrace {
                    run,
                    ..NetRunTrace::default()
                })
                .health
                .push(HealthSample {
                    tick,
                    peer,
                    pieces: u64_field(e, "pieces").unwrap_or(0),
                    bytes_kb: field(e, "bytes_kb").and_then(Value::as_f64).unwrap_or(0.0),
                    neighbors: u64_field(e, "neighbors").unwrap_or(0),
                    online: field(e, "online").and_then(Value::as_bool).unwrap_or(false),
                    stalled: field(e, "stalled")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                });
        } else if e.kind == "net.stall" {
            let (Some(run), Some(tick), Some(peer)) = (
                u64_field(e, "run"),
                u64_field(e, "tick"),
                u64_field(e, "peer"),
            ) else {
                continue;
            };
            runs.entry(run)
                .or_insert_with(|| NetRunTrace {
                    run,
                    ..NetRunTrace::default()
                })
                .stalls
                .push(StallSample {
                    tick,
                    peer,
                    since: u64_field(e, "since").unwrap_or(0),
                });
        }
    }

    // Invariant 2 (tail): requests still open at stream end.
    for (run, reqs) in &open {
        let leftovers: Vec<_> = reqs.leftovers().collect();
        if let Some(trace) = runs.get_mut(run) {
            for (local, remote, piece) in leftovers {
                trace.violations.push(format!(
                    "request by peer {local} to {remote} for piece {piece} never resolved"
                ));
            }
        }
    }
    // Invariant 3: every completion matches a serve at the server.
    for (run, server, receiver, piece) in dones {
        if serves
            .get(&(run, server, receiver, piece))
            .copied()
            .unwrap_or(0)
            == 0
        {
            if let Some(trace) = runs.get_mut(&run) {
                trace.violations.push(format!(
                    "peer {receiver} completed piece {piece} from {server} \
                     but {server} never recorded serving it"
                ));
            }
        }
    }
    // Invariant 1: traffic implies a handshake at both endpoints.
    for trace in runs.values_mut() {
        let mut missing = Vec::new();
        for (&(a, b), conn) in &trace.conns {
            if !conn.has_traffic() {
                continue;
            }
            for side in [a, b] {
                if !conn.handshaken.contains(&side) {
                    missing.push(format!(
                        "conn {a}<->{b} carried traffic but {side} never completed a handshake"
                    ));
                }
            }
        }
        trace.violations.extend(missing);
    }

    runs.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_obs::{val, ConnPhase, Dir};

    fn ev(kind: &str, fields: &[(&str, Value)]) -> Event {
        Event {
            seq: 0,
            ts_us: 0,
            kind: kind.to_string(),
            job: None,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    // Events are built directly with the field names `emit()` writes —
    // the emit→parse round trip itself is covered in `swarm-obs`.
    fn conn(run: u64, tick: u64, local: u64, remote: u64, phase: ConnPhase) -> Event {
        ev(
            swarm_obs::CONN_KIND,
            &[
                ("run", val(run)),
                ("tick", val(tick)),
                ("local", val(local)),
                ("remote", val(remote)),
                ("phase", val(phase.as_str())),
            ],
        )
    }

    fn req(run: u64, tick: u64, local: u64, remote: u64, piece: u64, phase: ReqPhase) -> Event {
        ev(
            swarm_obs::REQ_KIND,
            &[
                ("run", val(run)),
                ("tick", val(tick)),
                ("local", val(local)),
                ("remote", val(remote)),
                ("piece", val(piece)),
                ("phase", val(phase.as_str())),
            ],
        )
    }

    fn xfer(
        run: u64,
        tick: u64,
        local: u64,
        remote: u64,
        piece: u64,
        phase: XferPhase,
        latency: Option<u64>,
    ) -> Event {
        let mut fields = vec![
            ("run", val(run)),
            ("tick", val(tick)),
            ("local", val(local)),
            ("remote", val(remote)),
            ("piece", val(piece)),
            ("phase", val(phase.as_str())),
            ("kb", val(1000.0)),
        ];
        if let Some(l) = latency {
            fields.push(("latency_ticks", val(l)));
        }
        ev(swarm_obs::XFER_KIND, &fields)
    }

    fn clean_exchange() -> Vec<Event> {
        vec![
            conn(0, 1, 3, 1, ConnPhase::Open),
            conn(0, 1, 1, 3, ConnPhase::Handshake),
            conn(0, 2, 3, 1, ConnPhase::Handshake),
            req(0, 3, 3, 1, 0, ReqPhase::Tx),
            req(0, 3, 1, 3, 0, ReqPhase::Rx),
            xfer(0, 4, 1, 3, 0, XferPhase::Serve, None),
            xfer(0, 6, 3, 1, 0, XferPhase::Done, Some(3)),
        ]
    }

    #[test]
    fn clean_exchange_satisfies_all_invariants() {
        let runs = collect_net_runs(&clean_exchange());
        assert_eq!(runs.len(), 1);
        let trace = &runs[0];
        assert!(trace.violations.is_empty(), "{:?}", trace.violations);
        let conn = &trace.conns[&(1, 3)];
        assert_eq!(conn.requests, 1);
        assert_eq!(conn.serves, 1);
        assert_eq!(conn.dones, 1);
        assert_eq!(conn.latencies, vec![3]);
        assert_eq!(conn.latency_quantile(0.5), Some(3));
        assert_eq!(trace.completions(), 1);
    }

    #[test]
    fn unresolved_request_is_a_violation() {
        let events = vec![
            conn(0, 1, 1, 3, ConnPhase::Handshake),
            conn(0, 2, 3, 1, ConnPhase::Handshake),
            req(0, 3, 3, 1, 0, ReqPhase::Tx),
        ];
        let runs = collect_net_runs(&events);
        assert_eq!(runs[0].violations.len(), 1);
        assert!(runs[0].violations[0].contains("never resolved"));
    }

    #[test]
    fn cancel_without_open_request_is_a_violation() {
        let events = vec![req(0, 3, 3, 1, 0, ReqPhase::Cancel)];
        let runs = collect_net_runs(&events);
        assert!(runs[0]
            .violations
            .iter()
            .any(|v| v.contains("without an open request")));
    }

    #[test]
    fn cancel_done_echo_after_completion_is_legal() {
        // The completion already settled the request; the trailing
        // cancel[done] echo must not count as a zero-open close.
        let mut events = clean_exchange();
        let mut echo = req(0, 6, 3, 1, 0, ReqPhase::Cancel);
        echo.fields.push(("reason".to_string(), val("done")));
        events.push(echo);
        let runs = collect_net_runs(&events);
        assert!(runs[0].violations.is_empty(), "{:?}", runs[0].violations);
    }

    #[test]
    fn done_without_serve_is_a_violation() {
        let events = vec![
            conn(0, 1, 1, 3, ConnPhase::Handshake),
            conn(0, 2, 3, 1, ConnPhase::Handshake),
            req(0, 3, 3, 1, 0, ReqPhase::Tx),
            xfer(0, 6, 3, 1, 0, XferPhase::Done, None),
        ];
        let runs = collect_net_runs(&events);
        assert!(runs[0]
            .violations
            .iter()
            .any(|v| v.contains("never recorded serving")));
    }

    #[test]
    fn done_with_no_open_request_is_legal() {
        // A late piece frame after a choke cleared the request: the
        // receiver completes without an open request. Legal.
        let mut events = clean_exchange();
        events.push(xfer(0, 7, 1, 3, 5, XferPhase::Serve, None));
        events.push(xfer(0, 9, 3, 1, 5, XferPhase::Done, None));
        let runs = collect_net_runs(&events);
        assert!(runs[0].violations.is_empty(), "{:?}", runs[0].violations);
    }

    #[test]
    fn traffic_without_handshake_is_a_violation_but_half_open_is_not() {
        let events = vec![
            // Refused handshake, no traffic: reported, not a violation.
            conn(0, 1, 9, 2, ConnPhase::Refused),
            // Traffic with only one handshaken side: violation.
            conn(0, 1, 1, 3, ConnPhase::Handshake),
            req(0, 3, 3, 1, 0, ReqPhase::Tx),
            req(0, 4, 3, 1, 0, ReqPhase::Cancel),
        ];
        let runs = collect_net_runs(&events);
        let trace = &runs[0];
        assert_eq!(trace.half_open(), 1);
        assert!(trace
            .violations
            .iter()
            .any(|v| v.contains("never completed a handshake")));
        assert!(!trace.violations.iter().any(|v| v.contains("9")));
    }

    #[test]
    fn completion_closes_every_open_request_for_the_piece() {
        // Two outstanding requests for the same piece against different
        // servers; the completion settles both (endgame cancel).
        let events = vec![
            conn(0, 1, 1, 3, ConnPhase::Handshake),
            conn(0, 1, 3, 1, ConnPhase::Handshake),
            conn(0, 1, 2, 3, ConnPhase::Handshake),
            conn(0, 1, 3, 2, ConnPhase::Handshake),
            req(0, 3, 3, 1, 0, ReqPhase::Tx),
            req(0, 3, 3, 2, 0, ReqPhase::Tx),
            xfer(0, 4, 1, 3, 0, XferPhase::Serve, None),
            xfer(0, 6, 3, 1, 0, XferPhase::Done, Some(3)),
        ];
        let runs = collect_net_runs(&events);
        assert!(runs[0].violations.is_empty(), "{:?}", runs[0].violations);
    }

    #[test]
    fn runs_are_separated_by_ordinal() {
        let mut events = clean_exchange();
        events.push(req(7, 3, 3, 1, 0, ReqPhase::Tx));
        let runs = collect_net_runs(&events);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].run, 0);
        assert_eq!(runs[1].run, 7);
        assert!(runs[0].violations.is_empty());
        // Run 7's lone tx is unresolved AND rides a handshake-less
        // connection — both invariants fire there, none leak to run 0.
        assert!(runs[1]
            .violations
            .iter()
            .any(|v| v.contains("never resolved")));
        assert!(runs[1]
            .violations
            .iter()
            .any(|v| v.contains("never completed a handshake")));
    }

    #[test]
    fn health_and_stall_events_are_collected() {
        use serde_json::json;
        let events = vec![
            ev(
                "net.health",
                &[
                    ("run", json!(0)),
                    ("tick", json!(20)),
                    ("peer", json!(3)),
                    ("pieces", json!(5)),
                    ("bytes_kb", json!(5000.0)),
                    ("neighbors", json!(2)),
                    ("online", json!(true)),
                    ("stalled", json!(false)),
                ],
            ),
            ev(
                "net.stall",
                &[
                    ("run", json!(0)),
                    ("tick", json!(60)),
                    ("peer", json!(3)),
                    ("since", json!(40)),
                ],
            ),
        ];
        let runs = collect_net_runs(&events);
        assert_eq!(runs[0].health.len(), 1);
        assert_eq!(runs[0].health[0].pieces, 5);
        assert!(runs[0].health[0].online);
        assert_eq!(runs[0].stalls.len(), 1);
        assert_eq!(runs[0].stalls[0].since, 40);
    }

    #[test]
    fn swimlane_and_collapsed_render_the_timeline() {
        let runs = collect_net_runs(&clean_exchange());
        let lane = runs[0].swimlane();
        assert!(lane.contains("conn 1<->3"));
        assert!(lane.contains("xfer.done"));
        let folded = runs[0].collapsed();
        assert!(folded
            .iter()
            .any(|l| l.stack == "net;conn 1-3;req.tx" && l.self_us == 1));
        let text = crate::flame::to_folded(&folded);
        assert!(text.contains("net;conn 1-3;xfer.serve 1"));
    }

    #[test]
    fn conn_event_dir_shows_in_the_timeline() {
        let e = ev(
            swarm_obs::CONN_KIND,
            &[
                ("run", val(0u64)),
                ("tick", val(5u64)),
                ("local", val(1u64)),
                ("remote", val(3u64)),
                ("phase", val(ConnPhase::Choke.as_str())),
                ("dir", val(Dir::Tx.as_str())),
            ],
        );
        let runs = collect_net_runs(&[e]);
        let conn = &runs[0].conns[&(1, 3)];
        assert_eq!(conn.timeline[0].what, "conn.choke.tx");
    }
}
