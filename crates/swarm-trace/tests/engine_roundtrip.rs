//! End-to-end: a real `swarm-bt` run's drained telemetry must
//! reconstruct into a trace whose availability figure matches the
//! engine's own, and whose spans fold into a non-empty profile.
//!
//! Own test binary: it owns the process-global `swarm-obs` state
//! (enable switch + flight recorder), which must not race with other
//! tests' drains.

use swarm_bt::{run, BtConfig};
use swarm_trace::flame;
use swarm_trace::timeline::collect_runs;

#[test]
fn drained_engine_telemetry_reconstructs_the_run() {
    swarm_obs::set_enabled(true);
    let result = {
        let _job = swarm_obs::job_scope("roundtrip");
        run(&BtConfig::paper_section_4_3(1, 42))
    };
    swarm_obs::set_enabled(false);
    let events = swarm_obs::drain_job("roundtrip");
    assert!(!events.is_empty());

    let runs = collect_runs(&events);
    assert_eq!(runs.len(), 1, "one engine run, one trace");
    let trace = &runs[0];
    assert!(trace.run >= 1, "run ordinal is allocated from 1");
    assert_eq!(trace.job.as_deref(), Some("roundtrip"));

    let info = trace.info.as_ref().expect("bt.run.start captured");
    assert_eq!(info.k, 1);
    assert_eq!(info.horizon, 1200);
    assert_eq!(info.publisher, "on_off");
    assert!((info.peer_upload_mean - 50.0).abs() < 1e-9);

    // The step function rebuilt from sparse transition events must
    // reproduce the engine's own per-tick availability count exactly.
    let end = trace.end.expect("bt.run.end captured");
    assert!((end.availability - result.availability).abs() < 1e-12);
    let frac = trace.unavailable_fraction().expect("transitions seen");
    assert!(
        (frac - (1.0 - result.availability)).abs() < 1e-9,
        "reconstructed unavailable fraction {frac} vs engine {}",
        1.0 - result.availability
    );

    // §4.3 parameters: the closed form predicts P in (0,1); the trace
    // measurement must land in the same regime (single short run, so
    // only a coarse agreement bound is meaningful).
    let check = trace.model_check().expect("on_off publisher maps to model");
    assert!(check.model_unavailability > 0.0 && check.model_unavailability < 1.0);
    assert!(check.abs_error() < 0.5);

    // Strided tick samples cover the run.
    assert!(
        trace.ticks.len() as u64 >= info.horizon / swarm_trace::timeline::TICK_EVENT_SAMPLE,
        "expected tick samples across the horizon, got {}",
        trace.ticks.len()
    );
    assert!(trace.ticks.iter().all(|t| t.covered <= info.pieces));

    // The run's spans fold into a profile containing the engine span.
    let folded = flame::collapse_spans(&events);
    assert!(
        folded.iter().any(|l| l.stack.contains("bt.run")),
        "bt.run span missing from {folded:?}"
    );

    // Determinism cross-check: a second identical run (new ordinal)
    // reconstructs the identical step function.
    swarm_obs::set_enabled(true);
    let _ = {
        let _job = swarm_obs::job_scope("roundtrip2");
        run(&BtConfig::paper_section_4_3(1, 42))
    };
    swarm_obs::set_enabled(false);
    let events2 = swarm_obs::drain_job("roundtrip2");
    let runs2 = collect_runs(&events2);
    assert_eq!(runs2.len(), 1);
    assert!(runs2[0].run > trace.run, "ordinals strictly increase");
    assert_eq!(runs2[0].flips, trace.flips, "same seed, same step function");
}
