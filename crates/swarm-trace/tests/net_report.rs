//! `repro net-report` end to end: telemetry dir in, exit code and
//! artifacts out. Exercises the three exit paths — clean (0),
//! invariant violation (1), no net telemetry (2).

use serde_json::Value;
use swarm_obs::{to_jsonl, val, Event};
use swarm_trace::cli::net_report_main;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("net-report-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ev(seq: u64, kind: &str, fields: &[(&str, Value)]) -> Event {
    Event {
        seq,
        ts_us: seq,
        kind: kind.to_string(),
        job: None,
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    }
}

fn lifecycle(
    seq: u64,
    kind: &str,
    tick: u64,
    local: u64,
    remote: u64,
    phase: &str,
    piece: Option<u64>,
) -> Event {
    let mut fields = vec![
        ("run", val(0u64)),
        ("tick", val(tick)),
        ("local", val(local)),
        ("remote", val(remote)),
        ("phase", val(phase)),
    ];
    if let Some(p) = piece {
        fields.push(("piece", val(p)));
    }
    ev(seq, kind, &fields)
}

fn write_telemetry(dir: &std::path::Path, events: &[Event]) {
    std::fs::write(dir.join("telemetry.jsonl"), to_jsonl(events)).unwrap();
}

fn args(dir: &std::path::Path) -> Vec<String> {
    vec![dir.to_string_lossy().into_owned()]
}

#[test]
fn clean_run_exits_zero_and_writes_artifacts() {
    let dir = temp_dir("clean");
    write_telemetry(
        &dir,
        &[
            lifecycle(1, "net.conn", 1, 3, 1, "handshake", None),
            lifecycle(2, "net.conn", 1, 1, 3, "handshake", None),
            lifecycle(3, "net.req", 2, 3, 1, "tx", Some(0)),
            lifecycle(4, "net.xfer", 3, 1, 3, "serve", Some(0)),
            lifecycle(5, "net.xfer", 5, 3, 1, "done", Some(0)),
        ],
    );
    assert_eq!(net_report_main(&args(&dir)), 0);
    assert!(dir.join("net_swimlane.txt").is_file());
    assert!(dir.join("net_stacks.folded").is_file());
    let folded = std::fs::read_to_string(dir.join("net_stacks.folded")).unwrap();
    assert!(folded.contains("net;conn 1-3;xfer.done 1"), "{folded}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invariant_violation_exits_one() {
    let dir = temp_dir("violation");
    // A completion nobody served.
    write_telemetry(
        &dir,
        &[
            lifecycle(1, "net.conn", 1, 3, 1, "handshake", None),
            lifecycle(2, "net.conn", 1, 1, 3, "handshake", None),
            lifecycle(3, "net.xfer", 5, 3, 1, "done", Some(0)),
        ],
    );
    assert_eq!(net_report_main(&args(&dir)), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_without_net_telemetry_exits_two() {
    let dir = temp_dir("no-net");
    // Simulator-only telemetry: nothing for the net analyzer.
    write_telemetry(&dir, &[ev(1, "bt.run.start", &[("run", val(0u64))])]);
    assert_eq!(net_report_main(&args(&dir)), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(net_report_main(&["--nope".to_string()]), 2);
    assert_eq!(net_report_main(&[]), 2);
}
