//! swarm-trace unit tests: timeline reconstruction from synthetic
//! event streams, model mapping, flamegraph folding and metric
//! diffing. The end-to-end path over a real engine run lives in
//! `engine_roundtrip.rs` (own binary: it owns the process-global
//! flight recorder).

use serde_json::Value;
use std::collections::BTreeMap;
use swarm_obs::Event;
use swarm_trace::diff::{self, Baseline, Thresholds};
use swarm_trace::flame;
use swarm_trace::timeline::{collect_runs, Segment};

fn ev(seq: u64, kind: &str, fields: &[(&str, Value)]) -> Event {
    Event {
        seq,
        ts_us: seq,
        kind: kind.to_string(),
        job: Some("job-a".to_string()),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    }
}

fn run_start(seq: u64, run: u64, horizon: u64) -> Event {
    ev(
        seq,
        "bt.run.start",
        &[
            ("run", swarm_obs::val(run)),
            ("k", swarm_obs::val(4u64)),
            ("file_size", swarm_obs::val(4000.0)),
            ("pieces", swarm_obs::val(64u64)),
            ("arrival_rate", swarm_obs::val(4.0 / 60.0)),
            ("horizon", swarm_obs::val(horizon)),
            ("drain_ticks", swarm_obs::val(100u64)),
            ("seed", swarm_obs::val(7u64)),
            ("publisher", swarm_obs::val("on_off")),
            ("on_mean", swarm_obs::val(300.0)),
            ("off_mean", swarm_obs::val(900.0)),
            ("linger_mean", swarm_obs::val(Option::<f64>::None)),
            ("peer_upload_mean", swarm_obs::val(50.0)),
        ],
    )
}

fn avail(seq: u64, run: u64, tick: u64, available: bool) -> Event {
    ev(
        seq,
        "bt.availability",
        &[
            ("run", swarm_obs::val(run)),
            ("tick", swarm_obs::val(tick)),
            ("available", swarm_obs::val(available)),
            ("covered", swarm_obs::val(0u64)),
            ("min_replication", swarm_obs::val(0u64)),
        ],
    )
}

#[test]
fn interleaved_runs_are_grouped_by_ordinal() {
    // Two replications interleave in the stream (parallel jobs share
    // the ring); ordinals pull them apart again.
    let events = vec![
        run_start(0, 1, 1000),
        run_start(1, 2, 1000),
        avail(2, 1, 0, true),
        avail(3, 2, 0, false),
        avail(4, 1, 400, false),
        avail(5, 2, 250, true),
    ];
    let runs = collect_runs(&events);
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].run, 1);
    assert_eq!(runs[1].run, 2);
    assert_eq!(runs[0].info.as_ref().unwrap().k, 4);
    assert_eq!(runs[0].job.as_deref(), Some("job-a"));

    // Run 1: available [0,400), unavailable [400,1000) -> P = 0.6.
    assert!((runs[0].unavailable_fraction().unwrap() - 0.6).abs() < 1e-12);
    // Run 2: unavailable [0,250), available [250,1000) -> P = 0.25.
    assert!((runs[1].unavailable_fraction().unwrap() - 0.25).abs() < 1e-12);
}

#[test]
fn segments_partition_the_window() {
    let events = vec![
        run_start(0, 1, 100),
        avail(1, 1, 0, true),
        avail(2, 1, 30, false),
        avail(3, 1, 80, true),
    ];
    let runs = collect_runs(&events);
    assert_eq!(
        runs[0].segments(),
        vec![
            Segment {
                start: 0,
                end: 30,
                available: true
            },
            Segment {
                start: 30,
                end: 80,
                available: false
            },
            Segment {
                start: 80,
                end: 100,
                available: true
            },
        ]
    );
    // Only [0,30) completed inside the window; [80,100) is censored.
    let busy = runs[0].busy_periods();
    assert_eq!(busy.len(), 1);
    assert_eq!((busy[0].start, busy[0].end), (0, 30));
    assert_eq!(runs[0].mean_busy_period(), Some(30.0));
}

#[test]
fn post_horizon_transitions_are_clipped() {
    let events = vec![
        run_start(0, 1, 100),
        avail(1, 1, 0, false),
        avail(2, 1, 150, true), // during drain: outside the window
    ];
    let runs = collect_runs(&events);
    assert_eq!(runs[0].segments().len(), 1);
    assert!((runs[0].unavailable_fraction().unwrap() - 1.0).abs() < 1e-12);
}

#[test]
fn model_mapping_matches_closed_forms() {
    let events = vec![run_start(0, 1, 1000), avail(1, 1, 0, true)];
    let runs = collect_runs(&events);
    let p = runs[0].model_params().unwrap();
    assert!((p.lambda - 4.0 / 60.0).abs() < 1e-12);
    assert!((p.size - 16_000.0).abs() < 1e-12);
    assert!((p.mu - 50.0).abs() < 1e-12);
    assert!((p.r - 1.0 / 900.0).abs() < 1e-12);
    assert!((p.u - 300.0).abs() < 1e-12);

    let check = runs[0].model_check().unwrap();
    assert_eq!(
        check.model_unavailability,
        swarm_core::patient::unavailability(&p)
    );
    assert_eq!(
        check.model_busy_period,
        swarm_core::patient::busy_period(&p)
    );
    // Fully-available trace: error is exactly the predicted P.
    assert!((check.trace_unavailability - 0.0).abs() < 1e-12);
    assert!((check.abs_error() - check.model_unavailability).abs() < 1e-12);
}

#[test]
fn always_on_runs_have_no_model_check() {
    let mut start = run_start(0, 1, 1000);
    for (k, v) in &mut start.fields {
        if k == "publisher" {
            *v = swarm_obs::val("always_on");
        }
    }
    let runs = collect_runs(&[start, avail(1, 1, 0, true)]);
    assert!(runs[0].model_check().is_none());
}

#[test]
fn ascii_timeline_marks_states() {
    let events = vec![
        run_start(0, 1, 100),
        avail(1, 1, 0, true),
        avail(2, 1, 50, false),
    ];
    let runs = collect_runs(&events);
    let strip = runs[0].ascii_timeline(10);
    assert_eq!(strip, "#####.....");
    // No transitions at all: unknown everywhere.
    let unknown = collect_runs(&[run_start(0, 2, 100)]);
    assert_eq!(unknown[0].ascii_timeline(4), "????");
}

// --- flame -----------------------------------------------------------

fn span_ev(seq: u64, name: &str, id: u64, parent: u64, dur_us: f64, label: Option<&str>) -> Event {
    let mut fields = vec![
        ("name", swarm_obs::val(name)),
        ("id", swarm_obs::val(id)),
        ("parent", swarm_obs::val(parent)),
        ("dur_us", swarm_obs::val(dur_us)),
    ];
    if let Some(l) = label {
        fields.push(("label", swarm_obs::val(l)));
    }
    ev(seq, "span", &fields)
}

#[test]
fn collapse_charges_self_time_not_total() {
    // root(1000) -> child(600) -> leaf(100); self times 400/500/100.
    let events = vec![
        span_ev(0, "leaf", 3, 2, 100.0, None),
        span_ev(1, "child", 2, 1, 600.0, None),
        span_ev(2, "root", 1, 0, 1000.0, None),
    ];
    let folded: BTreeMap<String, u64> = flame::collapse_spans(&events)
        .into_iter()
        .map(|l| (l.stack, l.self_us))
        .collect();
    assert_eq!(folded["root"], 400);
    assert_eq!(folded["root;child"], 500);
    assert_eq!(folded["root;child;leaf"], 100);
}

#[test]
fn collapse_aggregates_labels_and_orphans() {
    let events = vec![
        // Two jobs under the same run span: labels keep them apart.
        span_ev(0, "job", 2, 1, 300.0, Some("a")),
        span_ev(1, "job", 3, 1, 200.0, Some("a")),
        span_ev(2, "job", 4, 1, 100.0, Some("b")),
        span_ev(3, "run", 1, 0, 700.0, None),
        // Parent id 99 never appears (evicted): rooted at (orphan).
        span_ev(4, "lost", 5, 99, 50.0, None),
    ];
    let folded: BTreeMap<String, u64> = flame::collapse_spans(&events)
        .into_iter()
        .map(|l| (l.stack, l.self_us))
        .collect();
    assert_eq!(folded["run;job[a]"], 500);
    assert_eq!(folded["run;job[b]"], 100);
    assert_eq!(folded["run"], 100);
    assert_eq!(folded["(orphan);lost"], 50);

    let text = flame::to_folded(&flame::collapse_spans(&events));
    assert!(text.contains("run;job[a] 500\n"), "{text}");
}

// --- diff ------------------------------------------------------------

fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

#[test]
fn deterministic_filter_drops_timing_and_scheduler_metrics() {
    assert!(diff::is_deterministic("bt.ticks"));
    assert!(diff::is_deterministic("sim.completions"));
    assert!(diff::is_deterministic("mc.reps"));
    assert!(diff::is_deterministic("catalog.peers.arrived"));
    assert!(!diff::is_deterministic("catalog.tick_latency_ns"));
    assert!(!diff::is_deterministic("stats.catalog.shard_flushes"));
    assert!(!diff::is_deterministic("bt.tick_ns"));
    assert!(!diff::is_deterministic("lab.workers.busy_ns"));
    assert!(!diff::is_deterministic("lab.cache.hit"));
    assert!(!diff::is_deterministic("span.bt.run"));
    assert!(!diff::is_deterministic("stats.budget.leases"));
    // Live-engine counters are deterministic; its wall-clock metrics
    // live under stats.net.* with _ns suffixes and stay out.
    assert!(diff::is_deterministic("net.ticks"));
    assert!(diff::is_deterministic("net.availability.transitions"));
    assert!(!diff::is_deterministic("stats.net.tick_ns"));
    assert!(!diff::is_deterministic("net.tick_ns"));
}

#[test]
fn sim_vs_live_gate_requires_exact_equality_on_comparable_stems() {
    let mut pairs: Vec<(&str, f64)> = Vec::new();
    let owned: Vec<(String, f64)> = diff::SIM_VS_LIVE_STEMS
        .iter()
        .flat_map(|stem| [(format!("bt.{stem}"), 10.0), (format!("net.{stem}"), 10.0)])
        .collect();
    for (k, v) in &owned {
        pairs.push((k.as_str(), *v));
    }
    let equal = metrics(&pairs);
    let report = diff::sim_vs_live(&equal);
    assert!(report.ok(), "{}", report.render(true));
    assert_eq!(report.entries.len(), diff::SIM_VS_LIVE_STEMS.len());

    // One counter drifting between engines fails the gate.
    let mut drifted = equal.clone();
    drifted.insert("net.completions".to_string(), 11.0);
    let report = diff::sim_vs_live(&drifted);
    assert_eq!(report.regressions(), 1);
    let bad = report.entries.iter().find(|e| e.regressed).unwrap();
    assert_eq!(bad.name, "bt.completions vs net.completions");

    // A missing side must fail too: the gate cannot silently pass
    // because one engine never ran.
    let mut half = equal.clone();
    half.remove("net.arrivals");
    let report = diff::sim_vs_live(&half);
    assert!(!report.ok());
    assert!(report.missing.contains(&"net.arrivals".to_string()));
}

#[test]
fn exact_match_passes_and_any_drift_fails_at_zero_threshold() {
    let a = metrics(&[("bt.ticks", 1000.0), ("bt.completions", 40.0)]);
    let same = diff::diff(&a, &a.clone(), &Thresholds::default());
    assert!(same.ok());

    let b = metrics(&[("bt.ticks", 1001.0), ("bt.completions", 40.0)]);
    let drift = diff::diff(&a, &b, &Thresholds::default());
    assert_eq!(drift.regressions(), 1);
    let bad = drift.entries.iter().find(|e| e.regressed).unwrap();
    assert_eq!(bad.name, "bt.ticks");
    assert!(drift.render(false).contains("REGRESSED"));
}

#[test]
fn thresholds_tolerate_small_drift_in_both_directions() {
    let a = metrics(&[("bt.bytes_moved", 1000.0)]);
    let up = metrics(&[("bt.bytes_moved", 1040.0)]);
    let down = metrics(&[("bt.bytes_moved", 960.0)]);
    let loose = Thresholds {
        default_max_rel: 0.05,
        per_metric: BTreeMap::new(),
    };
    assert!(diff::diff(&a, &up, &loose).ok());
    assert!(diff::diff(&a, &down, &loose).ok());
    let tight = Thresholds {
        default_max_rel: 0.01,
        per_metric: BTreeMap::new(),
    };
    assert!(!diff::diff(&a, &up, &tight).ok());
    assert!(!diff::diff(&a, &down, &tight).ok());
}

#[test]
fn per_metric_override_beats_default() {
    let a = metrics(&[("bt.ticks", 100.0), ("bt.bytes_moved", 100.0)]);
    let b = metrics(&[("bt.ticks", 100.0), ("bt.bytes_moved", 110.0)]);
    let mut t = Thresholds::default();
    t.per_metric.insert("bt.bytes_moved".to_string(), 0.2);
    assert!(diff::diff(&a, &b, &t).ok());
}

#[test]
fn missing_metric_fails_and_extra_metric_does_not() {
    let a = metrics(&[("bt.ticks", 100.0), ("bt.completions", 5.0)]);
    let b = metrics(&[("bt.ticks", 100.0), ("bt.arrivals", 9.0)]);
    let report = diff::diff(&a, &b, &Thresholds::default());
    assert_eq!(report.missing, vec!["bt.completions".to_string()]);
    assert_eq!(report.extra, vec!["bt.arrivals".to_string()]);
    assert_eq!(report.regressions(), 1);
}

#[test]
fn appearing_from_zero_is_infinite_drift() {
    assert_eq!(diff::rel_delta(0.0, 5.0), f64::INFINITY);
    assert_eq!(diff::rel_delta(0.0, 0.0), 0.0);
    let a = metrics(&[("bt.ticks", 0.0)]);
    let b = metrics(&[("bt.ticks", 5.0)]);
    // Even a huge finite threshold cannot absorb appearance-from-zero.
    let loose = Thresholds {
        default_max_rel: 1e9,
        per_metric: BTreeMap::new(),
    };
    assert!(!diff::diff(&a, &b, &loose).ok());
}

#[test]
fn baseline_round_trips_and_gates() {
    let current = metrics(&[("bt.ticks", 4800.0), ("bt.completions", 77.0)]);
    let baseline = Baseline::from_metrics(&current, "unit test", true, 0.0);
    let parsed = Baseline::from_json(&baseline.to_json()).unwrap();
    assert_eq!(parsed, baseline);
    assert!(parsed.check(&current).ok());

    let drifted = metrics(&[("bt.ticks", 4800.0), ("bt.completions", 78.0)]);
    assert_eq!(parsed.check(&drifted).regressions(), 1);

    // Metric gone entirely: also a failure.
    let gone = metrics(&[("bt.ticks", 4800.0)]);
    assert_eq!(parsed.check(&gone).regressions(), 1);
}

#[test]
fn metrics_json_loader_reads_snapshot_deltas() {
    let mut snap = swarm_obs::Snapshot::default();
    snap.counters.insert("bt.ticks".to_string(), 123);
    snap.counters.insert("bt.tick_ns".to_string(), 999);
    snap.counters.insert("lab.cache.hit".to_string(), 4);
    snap.gauges.insert("bt.peers.online".to_string(), 17);
    let json = serde_json::to_string(&snap).unwrap();
    let loaded = diff::load_metrics_json(&json).unwrap();
    assert_eq!(loaded, metrics(&[("bt.ticks", 123.0)]));
    assert!(diff::load_metrics_json("{not json").is_err());
}

// --- timeseries CLI gate ---------------------------------------------

fn ts_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ts-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_series(dir: &std::path::Path, extra_tick: Option<u64>) {
    let mut rec = swarm_obs::Recorder::with_capacity(8, 64);
    for base in [0u64, 8, 16] {
        rec.add(base, "ticks", 8);
        rec.add(base, "arrivals", 2);
    }
    if let Some(t) = extra_tick {
        rec.add(t, "arrivals", 1); // the injected regression
    }
    let mut series = BTreeMap::new();
    series.insert("bt".to_string(), rec);
    std::fs::write(
        dir.join("timeseries.jsonl"),
        swarm_obs::series_to_jsonl(&series),
    )
    .unwrap();
}

#[test]
fn diff_timeseries_gates_two_runs_and_baselines() {
    use swarm_trace::cli::diff_main;
    let a = ts_temp_dir("a");
    let b = ts_temp_dir("b");
    let broken = ts_temp_dir("broken");
    write_series(&a, None);
    write_series(&b, None);
    write_series(&broken, Some(9));
    let arg = |p: &std::path::Path| p.to_string_lossy().into_owned();

    // Identical runs pass; an injected window regression exits 1.
    assert_eq!(diff_main(&["--timeseries".into(), arg(&a), arg(&b)]), 0);
    assert_eq!(
        diff_main(&["--timeseries".into(), arg(&a), arg(&broken)]),
        1
    );

    // Baseline round trip: write from A, check A (pass) and the
    // perturbed run (fail).
    let bfile = a.join("baseline.json");
    assert_eq!(
        diff_main(&[
            "--timeseries".into(),
            "--baseline".into(),
            arg(&bfile),
            arg(&a),
            "--write-baseline".into(),
        ]),
        0
    );
    assert_eq!(
        diff_main(&[
            "--timeseries".into(),
            "--baseline".into(),
            arg(&bfile),
            arg(&a)
        ]),
        0
    );
    assert_eq!(
        diff_main(&[
            "--timeseries".into(),
            "--baseline".into(),
            arg(&bfile),
            arg(&broken),
        ]),
        1
    );

    // Usage errors exit 2.
    assert_eq!(diff_main(&["--timeseries".into(), arg(&a)]), 2);
    assert_eq!(
        diff_main(&["--timeseries".into(), "--sim-vs-live".into(), arg(&a)]),
        2
    );

    for d in [a, b, broken] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn trace_timeseries_reports_and_errors_without_file() {
    use swarm_trace::cli::trace_main;
    let dir = ts_temp_dir("trace");
    write_series(&dir, None);
    // trace needs a telemetry file to get past the initial scan.
    std::fs::write(dir.join("telemetry.jsonl"), swarm_obs::header_line()).unwrap();
    let arg = dir.to_string_lossy().into_owned();
    assert_eq!(trace_main(&[arg.clone(), "--timeseries".into()]), 0);
    assert_eq!(trace_main(std::slice::from_ref(&arg)), 0);

    // --timeseries without the file is a usage/IO error.
    std::fs::remove_file(dir.join("timeseries.jsonl")).unwrap();
    assert_eq!(trace_main(&[arg, "--timeseries".into()]), 2);
    let _ = std::fs::remove_dir_all(dir);
}
