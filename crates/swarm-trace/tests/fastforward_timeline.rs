//! Elided spans must not distort reconstructed timelines.
//!
//! `swarm-trace` rebuilds a run's availability step function from the
//! sparse `bt.availability` transition events and reads swarm shape
//! from the strided `bt.tick` samples. The engine's quiescence
//! fast-forward skips dense ticks but synthesizes the same strided
//! samples with identical payloads, so a dense and an elided run of the
//! same config must reconstruct into identical timelines — flip for
//! flip, segment for segment, sample for sample.
//!
//! Own test binary: it owns the process-global `swarm-obs` state
//! (enable switch + flight recorder), which must not race with other
//! tests' drains.

use swarm_bt::{run, BtConfig, BtPublisher};
use swarm_trace::timeline::{collect_runs, BtRunTrace};

fn traced(job: &str, cfg: &BtConfig) -> (BtRunTrace, f64) {
    swarm_obs::set_enabled(true);
    let result = {
        let _job = swarm_obs::job_scope(job);
        run(cfg)
    };
    swarm_obs::set_enabled(false);
    let events = swarm_obs::drain_job(job);
    let mut runs = collect_runs(&events);
    assert_eq!(runs.len(), 1, "one engine run, one trace");
    (runs.remove(0), result.availability)
}

#[test]
fn elided_run_reconstructs_identically() {
    // Idle-heavy §4.3 config: long off-periods make for big jumps, and
    // enough on-periods for several availability flips.
    let cfg = BtConfig {
        arrival_rate: 1.0 / 90.0,
        publisher: BtPublisher::OnOff {
            on_mean: 150.0,
            off_mean: 600.0,
            initially_on: true,
        },
        horizon: 2_400,
        drain_ticks: 1_200,
        ..BtConfig::paper_section_4_3(1, 42)
    };
    let dense_cfg = BtConfig {
        disable_fast_forward: true,
        ..cfg.clone()
    };

    let (dense, dense_avail) = traced("ff-dense", &dense_cfg);
    let (elided, elided_avail) = traced("ff-elided", &cfg);
    assert!(elided.run > dense.run, "ordinals strictly increase");

    // The availability step function is reconstructed from transition
    // events only; elision must leave every corner point in place.
    assert!(!dense.flips.is_empty(), "config must produce transitions");
    assert_eq!(dense.flips, elided.flips, "step-function corner points");
    assert_eq!(dense.segments(), elided.segments(), "step function");
    assert_eq!(
        dense.unavailable_fraction(),
        elided.unavailable_fraction(),
        "measured unavailability"
    );
    assert_eq!(dense.busy_periods(), elided.busy_periods());

    // The strided tick samples are synthesized during elided spans with
    // payloads identical to what the dense loop emits.
    assert!(!dense.ticks.is_empty());
    assert_eq!(dense.ticks, elided.ticks, "strided bt.tick samples");

    // Both reconstructions agree with the engines' own figures, which
    // are themselves equal (dense-vs-elided BtResult equivalence).
    assert_eq!(dense_avail, elided_avail);
    let frac = elided.unavailable_fraction().expect("transitions seen");
    assert!(
        (frac - (1.0 - elided_avail)).abs() < 1e-9,
        "reconstructed unavailable fraction {frac} vs engine {}",
        1.0 - elided_avail
    );
}
