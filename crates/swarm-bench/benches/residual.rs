//! Microbenchmarks of residual busy periods B(n,m) and the Poisson
//! mixture B(m) — the eq. (13) evaluation behind every Figure 6 model
//! curve and the §4.2 table.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swarm_queue::residual::{poisson_mixture_residual, residual_busy_period};

fn bench_residual(c: &mut Criterion) {
    c.bench_function("residual_B(5,0)_small_load", |b| {
        b.iter(|| residual_busy_period(black_box(5), black_box(1.0 / 150.0), black_box(121.2)))
    });

    c.bench_function("residual_B(40,0)_bundle_load", |b| {
        // K = 7 bundle in the Figure 4 setting.
        b.iter(|| residual_busy_period(black_box(40), black_box(7.0 / 150.0), black_box(848.4)))
    });

    c.bench_function("poisson_mixture_B(9)_K1", |b| {
        b.iter(|| poisson_mixture_residual(black_box(9), black_box(1.0 / 60.0), black_box(80.0)))
    });

    c.bench_function("poisson_mixture_B(9)_K5", |b| {
        b.iter(|| poisson_mixture_residual(black_box(9), black_box(5.0 / 60.0), black_box(400.0)))
    });
}

criterion_group!(benches, bench_residual);
criterion_main!(benches);
