//! Throughput of the measurement pipeline: catalog generation and the
//! agent-sampling loop behind Figure 1.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use swarm_measurement::{availability_study, generate_catalog, CatalogConfig};

fn bench_measurement(c: &mut Criterion) {
    c.bench_function("generate_catalog_1pct", |b| {
        b.iter(|| {
            generate_catalog(&CatalogConfig {
                scale: 0.01,
                seed: 1,
            })
        })
    });

    let mut group = c.benchmark_group("availability_study");
    group.sample_size(10);
    group.bench_function("monitor_500_swarms_7mo", |b| {
        let catalog = generate_catalog(&CatalogConfig {
            scale: 0.0005,
            seed: 2,
        });
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(3),
            |mut rng| availability_study(&catalog, 7, &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_measurement);
criterion_main!(benches);
