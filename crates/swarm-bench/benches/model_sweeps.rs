//! End-to-end model sweeps: the complete analytic curves behind Figures 3
//! and 6(a) — what a user of the library pays to produce one figure.

use criterion::{criterion_group, criterion_main, Criterion};
use swarm_core::bundling::{sweep, sweep_single_publisher};
use swarm_core::params::{PublisherScaling, SwarmParams};

fn bench_sweeps(c: &mut Criterion) {
    let fig3 = SwarmParams {
        lambda: 0.003,
        size: 170.0,
        mu: 1.0,
        r: 1.0 / 900.0,
        u: 105.0,
    };
    let ks: Vec<u32> = (1..=10).collect();
    c.bench_function("fig3_one_curve_patient_sweep", |b| {
        b.iter(|| sweep(&fig3, PublisherScaling::Fixed, &ks))
    });

    let fig6 = SwarmParams {
        lambda: 1.0 / 60.0,
        size: 4_000.0,
        mu: 50.0,
        r: 1.0 / 900.0,
        u: 300.0,
    };
    let ks8: Vec<u32> = (1..=8).collect();
    c.bench_function("fig6a_model_curve_eq16_sweep", |b| {
        b.iter(|| sweep_single_publisher(&fig6, PublisherScaling::Fixed, 9, &ks8))
    });
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
