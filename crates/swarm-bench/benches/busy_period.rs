//! Microbenchmarks of the busy-period formulas — the inner loop of every
//! model sweep (each Figure 3 curve evaluates eq. (9) ~100 times).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use swarm_queue::busy::{classical_busy_period, TwoPhaseBusyPeriod};
use swarm_queue::dist::Exp;
use swarm_queue::general::{general_busy_period, IntegratedTail};

fn bench_busy(c: &mut Criterion) {
    c.bench_function("classical_busy_period", |b| {
        b.iter(|| classical_busy_period(black_box(0.02), black_box(80.0)))
    });

    let p_small = TwoPhaseBusyPeriod {
        beta: 1.0 / 60.0 + 1.0 / 900.0,
        theta: 300.0,
        q1: 0.9375,
        alpha1: 80.0,
        alpha2: 300.0,
    };
    c.bench_function("eq9_two_phase_small_load", |b| {
        b.iter(|| black_box(p_small).expected())
    });

    // K = 6 bundle: load ~48, hundreds of series terms.
    let p_bundle = TwoPhaseBusyPeriod {
        beta: 6.0 / 60.0 + 1.0 / 900.0,
        theta: 300.0,
        q1: 0.989,
        alpha1: 480.0,
        alpha2: 300.0,
    };
    c.bench_function("eq9_two_phase_bundle_load", |b| {
        b.iter(|| black_box(p_bundle).ln_expected())
    });

    c.bench_function("eq18_exceptional_initiator", |b| {
        let initiator = Exp::new(300.0);
        b.iter(|| {
            swarm_queue::busy::exceptional_busy_period(black_box(0.02), &initiator, black_box(80.0))
        })
    });

    c.bench_function("general_busy_period_lingering", |b| {
        let tail = IntegratedTail::mix(
            0.9,
            &IntegratedTail::hypoexp2(80.0, 120.0),
            &IntegratedTail::exponential(300.0),
        );
        b.iter(|| general_busy_period(black_box(0.02), black_box(300.0), &tail))
    });
}

criterion_group!(benches, bench_busy);
criterion_main!(benches);
