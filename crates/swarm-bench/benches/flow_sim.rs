//! Throughput of the flow-level discrete-event simulator: events per
//! second across the regimes the Figure 6 sweeps run in.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use swarm_sim::{run, Patience, PublisherProcess, ServiceModel, SimConfig};

fn cfg(k: u32, horizon: f64) -> SimConfig {
    let kf = k as f64;
    SimConfig {
        lambda: kf / 60.0,
        service: ServiceModel::Exponential { mean: 80.0 * kf },
        publisher: PublisherProcess::SingleOnOff {
            on_mean: 300.0,
            off_mean: 900.0,
            initially_on: true,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: 9,
        horizon,
        warmup: 0.0,
        seed: 1,
        record_timeline: false,
    }
}

fn bench_flow_sim(c: &mut Criterion) {
    c.bench_function("flow_sim_K1_10k_s", |b| {
        b.iter_batched(|| cfg(1, 10_000.0), |c| run(&c), BatchSize::SmallInput)
    });
    c.bench_function("flow_sim_K4_10k_s", |b| {
        b.iter_batched(|| cfg(4, 10_000.0), |c| run(&c), BatchSize::SmallInput)
    });
    c.bench_function("flow_sim_fluid_K4_10k_s", |b| {
        b.iter_batched(
            || SimConfig {
                service: ServiceModel::Fluid {
                    size: 16_000.0,
                    peer_upload: 50.0,
                    publisher_upload: 100.0,
                    download_cap: 4_000.0,
                },
                ..cfg(4, 10_000.0)
            },
            |c| run(&c),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_flow_sim);
criterion_main!(benches);
