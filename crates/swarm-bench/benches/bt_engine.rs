//! Throughput of the block-level engine: full §4.3-style runs (1200 s of
//! swarm time plus drain) at small and large bundle sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use swarm_bt::{run, BtConfig};

fn bench_bt(c: &mut Criterion) {
    let mut group = c.benchmark_group("bt_engine");
    group.sample_size(10);
    group.bench_function("bt_K1_1200s", |b| {
        b.iter_batched(
            || BtConfig {
                drain_ticks: 600,
                ..BtConfig::paper_section_4_3(1, 7)
            },
            |cfg| run(&cfg),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bt_K4_1200s", |b| {
        b.iter_batched(
            || BtConfig {
                drain_ticks: 600,
                ..BtConfig::paper_section_4_3(4, 7)
            },
            |cfg| run(&cfg),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bt_K8_seedless_1500s", |b| {
        b.iter_batched(
            || BtConfig::paper_section_4_2(8, 7),
            |cfg| run(&cfg),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bt_K16_1200s", |b| {
        b.iter_batched(
            || BtConfig {
                drain_ticks: 600,
                ..BtConfig::paper_section_4_3(16, 7)
            },
            |cfg| run(&cfg),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bt_K16_timeline_1200s", |b| {
        b.iter_batched(
            || BtConfig {
                drain_ticks: 600,
                record_timeline: true,
                ..BtConfig::paper_section_4_3(16, 7)
            },
            |cfg| run(&cfg),
            BatchSize::SmallInput,
        )
    });
    // Multi-word bitfield points: the word-level kernels only show their
    // shape once a peer's bitmap spans several u64 words. K=16 seedless is
    // 256 pieces (4 words per peer), K=32 is 512 (8 words) — wide enough
    // that interest scans, candidate walks and holder drops are genuinely
    // word-parallel rather than single-word.
    group.bench_function("bt_K16_seedless_1500s", |b| {
        b.iter_batched(
            || BtConfig::paper_section_4_2(16, 7),
            |cfg| run(&cfg),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bt_K32_seedless_1500s", |b| {
        b.iter_batched(
            || BtConfig::paper_section_4_2(32, 7),
            |cfg| run(&cfg),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_bt);
criterion_main!(benches);
