//! `soa_guard` — CI guard for the struct-of-arrays engine layout.
//!
//! ```text
//! soa_guard [--reps N] [--min-speedup F] [--out FILE] [--record-only]
//! ```
//!
//! The PR that introduced the `BitArena` + word-kernel layout removed
//! the array-of-structs engine entirely, so a live A/B of the two
//! engines is no longer possible. This guard instead times the *data
//! layout itself* under an engine-shaped workload at the
//! `bt_K8_seedless_1500s` quick-config scale (128-piece bundle, a few
//! hundred peers, the three hot phases of a transfer tick):
//!
//! * **reference arm** — the pre-refactor shape: one fat node struct
//!   per peer with its bitmap in a per-peer heap allocation, interest
//!   and candidate scans as per-bit `has()` loops, holder drops as a
//!   per-bit `ones()` walk over the departing bitmap.
//! * **SoA arm** — the shipped shape: bitmaps in one flat
//!   [`swarm_bt::BitArena`], interest via the word-wise AND-NOT kernel,
//!   candidate enumeration walking `theirs & !mine & !taken` words,
//!   holder drops consuming whole words.
//!
//! Both arms compute the same checksums (asserted), so neither can be
//! optimized into less work than the other. Reps alternate
//! reference/SoA within one process — the `obs_overhead marginal`
//! pattern — so slow timing drift (single-core scheduling, frequency
//! scaling) hits both arms equally and cancels out of the min-over-min
//! ratio. That is what makes a 1.5x bar enforceable even on the 1-core
//! CI runner: unlike `catalog_bench`, whose parallel-speedup bar must
//! be waived below 8 cores (see its `speedup_bar_note`), this ratio
//! compares two single-threaded layouts and is core-count independent;
//! the note field records that reasoning in the artifact.

use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;
use swarm_bt::bitfield::{self, BitArena};

const USAGE: &str = "usage: soa_guard [--reps N] [--min-speedup F] [--out FILE] [--record-only]";

/// Workload scale, mirroring the `bt_K8_seedless_1500s` quick config:
/// an 8-file bundle is 128 pieces (two words per bitmap), and a blocked
/// 1500 s seedless swarm carries a few hundred concurrent peers.
const PIECES: usize = 128;
const PEERS: usize = 256;
const NEIGHBORS: usize = 16;
/// Requests a downloader's *other* connections hold (the `taken` set).
const TAKEN_PER_PEER: usize = 4;
/// Every `DROP_STRIDE`-th peer departs in the drop phase.
const DROP_STRIDE: usize = 8;

/// Deterministic xorshift64* — the workload must be identical across
/// arms and runs without dragging an RNG crate into the guard.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

// --- shared scenario ------------------------------------------------------

/// One peer's generated state, layout-agnostic.
struct Scenario {
    /// Per peer: held-piece flags.
    held: Vec<Vec<bool>>,
    /// Per peer: neighbor ids.
    neighbors: Vec<Vec<usize>>,
    /// Per peer: pieces taken by its other connections.
    taken: Vec<Vec<usize>>,
}

fn build_scenario() -> Scenario {
    let mut rng = XorShift(0x5EED_CAFE_F00D_0001);
    let mut held = Vec::with_capacity(PEERS);
    let mut neighbors = Vec::with_capacity(PEERS);
    let mut taken = Vec::with_capacity(PEERS);
    for i in 0..PEERS {
        // Held fraction varies across the population (newcomers through
        // near-seeds), like a blocked swarm's spread of progress.
        let fill = (i % 10) as u64 * 6;
        held.push(
            (0..PIECES)
                .map(|_| rng.next() % 64 < fill)
                .collect::<Vec<bool>>(),
        );
        neighbors.push(
            (0..NEIGHBORS)
                .map(|_| (rng.next() as usize) % PEERS)
                .filter(|&n| n != i)
                .collect::<Vec<usize>>(),
        );
        taken.push(
            (0..TAKEN_PER_PEER)
                .map(|_| (rng.next() as usize) % PIECES)
                .collect::<Vec<usize>>(),
        );
    }
    Scenario {
        held,
        neighbors,
        taken,
    }
}

/// Replication-histogram state shared by both drop-phase variants; the
/// update rules mirror the engine's `ReplicationIndex`.
struct Rep {
    counts: Vec<u32>,
    hist: Vec<u32>,
    covered: usize,
    min_count: u32,
}

impl Rep {
    fn build(held: &[Vec<bool>]) -> Rep {
        let mut counts = vec![0u32; PIECES];
        for row in held {
            for (p, &h) in row.iter().enumerate() {
                if h {
                    counts[p] += 1;
                }
            }
        }
        let max = counts.iter().copied().max().unwrap_or(0) as usize;
        let mut hist = vec![0u32; max + 1];
        for &c in &counts {
            hist[c as usize] += 1;
        }
        Rep {
            covered: counts.iter().filter(|&&c| c > 0).count(),
            min_count: counts.iter().copied().min().unwrap_or(0),
            counts,
            hist,
        }
    }

    /// One holder of `p` departed (the engine's per-bit `lose`).
    #[inline]
    fn lose(&mut self, p: usize) -> u32 {
        let c = self.counts[p] as usize;
        self.counts[p] = (c - 1) as u32;
        self.hist[c] -= 1;
        self.hist[c - 1] += 1;
        if c == 1 {
            self.covered -= 1;
        }
        (c - 1) as u32
    }

    fn checksum(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum::<u64>()
            + self.covered as u64 * 1_000_003
            + self.min_count as u64 * 7
    }
}

// --- reference (AoS) arm --------------------------------------------------

/// The pre-refactor node shape: per-peer heap bitmap plus ~160 bytes of
/// inline cold fields (timestamps, windows, capacity — everything the
/// old `Node` carried between the hot fields). The cold block is dead
/// weight in the hot loops, exactly the cache-line dilution the SoA
/// layout removes.
struct RefNode {
    words: Vec<u64>,
    num_held: usize,
    _cold: [u64; 20],
}

#[inline]
fn ref_has(words: &[u64], p: usize) -> bool {
    words[p / 64] & (1u64 << (p % 64)) != 0
}

struct RefArm {
    nodes: Vec<RefNode>,
    rep_base: Rep,
    taken_stamp: Vec<u32>,
    taken_gen: u32,
    free: Vec<usize>,
}

impl RefArm {
    fn build(sc: &Scenario) -> RefArm {
        let nodes = sc
            .held
            .iter()
            .map(|row| {
                let mut words = vec![0u64; PIECES.div_ceil(64)];
                let mut num_held = 0;
                for (p, &h) in row.iter().enumerate() {
                    if h {
                        words[p / 64] |= 1u64 << (p % 64);
                        num_held += 1;
                    }
                }
                RefNode {
                    words,
                    num_held,
                    _cold: [0; 20],
                }
            })
            .collect();
        RefArm {
            nodes,
            rep_base: Rep::build(&sc.held),
            taken_stamp: vec![0; PIECES],
            taken_gen: 0,
            free: Vec::with_capacity(PIECES),
        }
    }

    fn run(&mut self, sc: &Scenario) -> (u64, u64, u64) {
        // Phase 1: interest scan — per-bit `has()` loop per pair, the
        // old `interested_in` shape.
        let mut interested = 0u64;
        for (u, nbrs) in sc.neighbors.iter().enumerate() {
            let un = &self.nodes[u];
            for &d in nbrs {
                let dn = &self.nodes[d];
                if dn.num_held < PIECES
                    && (0..PIECES).any(|p| ref_has(&un.words, p) && !ref_has(&dn.words, p))
                {
                    interested += 1;
                }
            }
        }
        // Phase 2: candidate enumeration — generation-stamped taken set
        // plus a per-bit missing_from walk, the old `pick_piece` shape.
        let mut free_total = 0u64;
        for (u, nbrs) in sc.neighbors.iter().enumerate() {
            for &d in nbrs {
                self.taken_gen += 1;
                for &p in &sc.taken[d] {
                    self.taken_stamp[p] = self.taken_gen;
                }
                self.free.clear();
                let un = &self.nodes[u];
                let dn = &self.nodes[d];
                for p in 0..PIECES {
                    if ref_has(&un.words, p)
                        && !ref_has(&dn.words, p)
                        && self.taken_stamp[p] != self.taken_gen
                    {
                        self.free.push(p);
                    }
                }
                free_total +=
                    self.free.len() as u64 * 31 + self.free.first().copied().unwrap_or(0) as u64;
            }
        }
        // Phase 3: holder drops — per-bit ones() walk feeding `lose`,
        // the old `drop_holder` shape. The histogram copy resets state
        // each rep and costs both arms the same memcpy.
        let mut rep = Rep {
            counts: self.rep_base.counts.clone(),
            hist: self.rep_base.hist.clone(),
            covered: self.rep_base.covered,
            min_count: self.rep_base.min_count,
        };
        for i in (0..PEERS).step_by(DROP_STRIDE) {
            let words = &self.nodes[i].words;
            let mut min_touched = u32::MAX;
            for p in (0..PIECES).filter(|&p| ref_has(words, p)) {
                min_touched = min_touched.min(rep.lose(p));
            }
            if min_touched < rep.min_count {
                rep.min_count = min_touched;
            }
        }
        (interested, free_total, rep.checksum())
    }
}

// --- SoA arm --------------------------------------------------------------

struct SoaArm {
    bits: BitArena,
    num_held: Vec<usize>,
    rep_base: Rep,
    taken_words: Vec<u64>,
    free: Vec<usize>,
}

impl SoaArm {
    fn build(sc: &Scenario) -> SoaArm {
        let mut bits = BitArena::new(PIECES);
        let mut num_held = Vec::with_capacity(PEERS);
        for row in &sc.held {
            let id = bits.push_row();
            let mut held = 0;
            for (p, &h) in row.iter().enumerate() {
                if h {
                    bits.set(id, p);
                    held += 1;
                }
            }
            num_held.push(held);
        }
        let taken_words = vec![0u64; bits.words_per_row()];
        SoaArm {
            bits,
            num_held,
            rep_base: Rep::build(&sc.held),
            taken_words,
            free: Vec::with_capacity(PIECES),
        }
    }

    fn run(&mut self, sc: &Scenario) -> (u64, u64, u64) {
        // Phase 1: interest via the word-wise AND-NOT kernel.
        let mut interested = 0u64;
        for (u, nbrs) in sc.neighbors.iter().enumerate() {
            let u_bits = self.bits.row(u);
            for &d in nbrs {
                if self.num_held[d] < PIECES && bitfield::any_and_not(u_bits, self.bits.row(d)) {
                    interested += 1;
                }
            }
        }
        // Phase 2: candidate enumeration walking `theirs & !mine &
        // !taken` words, the shipped `pick_piece` shape.
        let mut free_total = 0u64;
        for (u, nbrs) in sc.neighbors.iter().enumerate() {
            for &d in nbrs {
                self.taken_words.fill(0);
                for &p in &sc.taken[d] {
                    self.taken_words[p / 64] |= 1u64 << (p % 64);
                }
                self.free.clear();
                let theirs = self.bits.row(u);
                let mine = self.bits.row(d);
                for wi in 0..theirs.len() {
                    let mut w = theirs[wi] & !mine[wi] & !self.taken_words[wi];
                    while w != 0 {
                        self.free.push(wi * 64 + w.trailing_zeros() as usize);
                        w &= w - 1;
                    }
                }
                free_total +=
                    self.free.len() as u64 * 31 + self.free.first().copied().unwrap_or(0) as u64;
            }
        }
        // Phase 3: holder drops consuming whole words.
        let mut rep = Rep {
            counts: self.rep_base.counts.clone(),
            hist: self.rep_base.hist.clone(),
            covered: self.rep_base.covered,
            min_count: self.rep_base.min_count,
        };
        for i in (0..PEERS).step_by(DROP_STRIDE) {
            let mut min_touched = u32::MAX;
            for (wi, &word) in self.bits.row(i).iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let p = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    min_touched = min_touched.min(rep.lose(p));
                }
            }
            if min_touched < rep.min_count {
                rep.min_count = min_touched;
            }
        }
        (interested, free_total, rep.checksum())
    }
}

// --- harness --------------------------------------------------------------

#[derive(Serialize)]
struct Report {
    workload: String,
    reps: usize,
    /// Inner workload iterations per timed rep.
    iters_per_rep: usize,
    reference_min_s: f64,
    reference_median_s: f64,
    soa_min_s: f64,
    soa_median_s: f64,
    /// `reference_min_s / soa_min_s`.
    speedup: f64,
    min_speedup: Option<f64>,
    bar_note: String,
    pass: bool,
}

fn summarize(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    (samples[0], samples[samples.len() / 2])
}

fn main() -> ExitCode {
    let mut reps = 20usize;
    let mut min_speedup = 1.5f64;
    let mut out: Option<String> = None;
    let mut record_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let fail = |msg: String| {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
        };
        match arg.as_str() {
            "--reps" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) => reps = v.max(1),
                _ => {
                    fail("--reps needs a number".into());
                    return ExitCode::from(2);
                }
            },
            "--min-speedup" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) => min_speedup = v,
                _ => {
                    fail("--min-speedup needs a number".into());
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    fail("--out needs a path".into());
                    return ExitCode::from(2);
                }
            },
            "--record-only" => record_only = true,
            other => {
                fail(format!("unknown argument: {other}"));
                return ExitCode::from(2);
            }
        }
    }

    let sc = build_scenario();
    let mut reference = RefArm::build(&sc);
    let mut soa = SoaArm::build(&sc);

    // The arms must agree bit-for-bit on every phase result — otherwise
    // the timing comparison is of two different computations.
    let want = reference.run(&sc);
    assert_eq!(want, soa.run(&sc), "layout arms computed different results");

    // Scale inner iterations so one rep is ~5-15 ms: long enough that
    // Instant overhead vanishes, short enough that the A/B interleave
    // cycles faster than thermal/scheduler drift.
    let iters_per_rep = 20usize;
    for arm in 0..2 {
        // Untimed warmup of both arms.
        let got = if arm == 0 {
            reference.run(&sc)
        } else {
            soa.run(&sc)
        };
        std::hint::black_box(got);
    }
    let mut ref_samples = Vec::with_capacity(reps);
    let mut soa_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters_per_rep {
            std::hint::black_box(reference.run(&sc));
        }
        ref_samples.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for _ in 0..iters_per_rep {
            std::hint::black_box(soa.run(&sc));
        }
        soa_samples.push(t0.elapsed().as_secs_f64());
    }
    let (reference_min_s, reference_median_s) = summarize(ref_samples);
    let (soa_min_s, soa_median_s) = summarize(soa_samples);
    let speedup = reference_min_s / soa_min_s;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bar_note = format!(
        "enforced on {cores} core(s): both arms are single-threaded and \
         interleaved in one process, so the ratio is core-count \
         independent and scheduler drift cancels (unlike catalog_bench's \
         parallel bar, which is waived below its thread count)"
    );
    let pass = record_only || speedup >= min_speedup;
    let report = Report {
        workload: format!(
            "{PIECES} pieces x {PEERS} peers, {NEIGHBORS} neighbors, \
             interest + candidate-walk + holder-drop phases \
             (bt_K8_seedless_1500s quick-config scale)"
        ),
        reps,
        iters_per_rep,
        reference_min_s,
        reference_median_s,
        soa_min_s,
        soa_median_s,
        speedup,
        min_speedup: (!record_only).then_some(min_speedup),
        bar_note,
        pass,
    };
    eprintln!(
        "soa layout speedup: {speedup:.2}x (bar {}) — {}",
        if record_only {
            "recorded only".to_string()
        } else {
            format!("{min_speedup:.2}x")
        },
        if pass { "ok" } else { "REGRESSION" },
    );
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("error: write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => println!("{json}"),
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
