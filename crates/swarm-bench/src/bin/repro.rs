//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # show available experiment ids
//! repro all [--quick]        # run everything (writes repro_out/)
//! repro fig6a [--quick]      # run one experiment
//! repro fig1 fig3 --quick    # run several
//! ```
//!
//! Output goes to stdout and to `repro_out/<id>.{txt,json}`.

use std::path::PathBuf;
use std::process::ExitCode;
use swarm_bench::{run_experiment, EXPERIMENTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if ids.is_empty() || ids.iter().any(|a| a.as_str() == "help") {
        eprintln!("usage: repro <list|all|EXPERIMENT...> [--quick]");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        return ExitCode::from(2);
    }
    if ids.len() == 1 && ids[0] == "list" {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&str> = if ids.len() == 1 && ids[0] == "all" {
        EXPERIMENTS.to_vec()
    } else {
        let mut v = Vec::new();
        for id in &ids {
            if !EXPERIMENTS.contains(&id.as_str()) {
                eprintln!("unknown experiment: {id}");
                eprintln!("experiments: {}", EXPERIMENTS.join(", "));
                return ExitCode::from(2);
            }
            v.push(id.as_str());
        }
        v
    };

    let out_dir = PathBuf::from("repro_out");
    for id in selected {
        let start = std::time::Instant::now();
        let report = run_experiment(id, quick).expect("validated id");
        println!("{}", report.text);
        if let Err(e) = report.save(&out_dir) {
            eprintln!("warning: failed to save {id}: {e}");
        }
        eprintln!("[{id} finished in {:.1} s]", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
