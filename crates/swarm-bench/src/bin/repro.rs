//! `repro` — regenerate the paper's tables and figures through the
//! `swarm-lab` orchestrator.
//!
//! ```text
//! repro list                      # show available experiment ids
//! repro all [--quick]             # run everything (writes repro_out/)
//! repro fig6a [--quick]           # run one experiment
//! repro all fig1 --quick          # `all` composes anywhere; ids dedupe
//! repro all --jobs 4 --force      # 4 concurrent jobs, ignore the cache
//! repro all --dry-run             # show the dispatch plan, run nothing
//! ```
//!
//! Jobs are scheduled longest-first across a worker pool (`--jobs N`,
//! default: all cores) sharing one compute-thread budget, results are
//! replayed from a content-addressed cache under `repro_out/.cache/`
//! keyed by (id, quick, code-version) unless `--force` (recompute,
//! re-store) or `--no-cache` (recompute, touch nothing), and each job is
//! panic-isolated: failures land in `repro_out/manifest.json` and the
//! exit code, not in the other jobs. Output goes to stdout plus
//! `repro_out/<id>.{txt,json}`; `--out DIR` redirects the whole tree.
//!
//! `--telemetry[=DIR]` turns on `swarm-obs` recording for the run: each
//! job writes `telemetry.jsonl` and a `metrics.json` summary under
//! `DIR/<id>/` (default `DIR` is `<out>/telemetry`), the manifest
//! carries per-job metric summaries, and the run ends with a rendered
//! telemetry table on stdout. `--quiet` (or `SWARM_LOG=warn`) silences
//! progress logging without touching the machine-readable output.
//!
//! Three offline subcommands analyze what a telemetry run wrote
//! (implemented in `swarm-trace`), and one online subcommand polls a
//! live run:
//!
//! ```text
//! repro trace <TELEMETRY_DIR>      # availability timelines, busy
//!                                  # periods vs the closed-form model,
//!                                  # collapsed-stack profile
//! repro trace DIR --timeseries     # ... plus the windowed trend report
//! repro diff A B                   # regression-gate two runs' metrics
//! repro diff --baseline F RUN      # ... or a run against a baseline
//! repro diff --timeseries A B      # trend-gate two runs' window series
//! repro net-report <TELEMETRY_DIR> # wire-level connection timelines,
//!                                  # conservation invariants, swarm
//!                                  # health report (live engine runs)
//! repro watch HOST:PORT            # poll a live /metrics exposition
//!                                  # (the TCP host's side port)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use swarm_bench::{lab, EXPERIMENTS};
use swarm_lab::{CacheMode, JobSpec, RunConfig};
use swarm_obs::{log_error, Level};

const USAGE: &str = "usage: repro <list|all|EXPERIMENT...> \
[--quick] [--jobs N] [--force] [--no-cache] [--out DIR] [--dry-run] \
[--quiet] [--telemetry[=DIR]]
       repro trace <TELEMETRY_DIR> [--flame PATH] [--width N] [--timeseries]
       repro diff <A> <B> [--max-rel R] [--metric NAME=R] [--timeseries]
       repro diff --baseline FILE <RUN> [--write-baseline] [--timeseries]
       repro net-report <TELEMETRY_DIR> [--swimlane PATH] [--folded PATH]
       repro watch <HOST:PORT> [--interval-ms MS] [--iters N]";

struct Args {
    ids: Vec<String>,
    list: bool,
    quick: bool,
    force: bool,
    no_cache: bool,
    dry_run: bool,
    quiet: bool,
    /// `Some(empty path)` means "default location under --out".
    telemetry: Option<PathBuf>,
    jobs: Option<usize>,
    out: PathBuf,
}

fn parse(raw: Vec<String>) -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        list: false,
        quick: false,
        force: false,
        no_cache: false,
        dry_run: false,
        quiet: false,
        telemetry: None,
        jobs: None,
        out: PathBuf::from("repro_out"),
    };
    fn flag_value(
        name: &str,
        arg: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<String, String> {
        match arg.split_once('=') {
            Some((_, v)) if !v.is_empty() => Ok(v.to_string()),
            Some(_) => Err(format!("{name} needs a value")),
            None => it.next().ok_or_else(|| format!("{name} needs a value")),
        }
    }
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--force" => args.force = true,
            "--no-cache" => args.no_cache = true,
            "--dry-run" => args.dry_run = true,
            "--quiet" => args.quiet = true,
            // Bare `--telemetry` takes no operand (the next word could
            // be an experiment id); an explicit dir uses `=`.
            "--telemetry" => args.telemetry = Some(PathBuf::new()),
            s if s.starts_with("--telemetry=") => {
                args.telemetry = Some(PathBuf::from(flag_value("--telemetry", s, &mut it)?));
            }
            s if s == "--jobs" || s.starts_with("--jobs=") => {
                let v = flag_value("--jobs", s, &mut it)?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                args.jobs = Some(n);
            }
            s if s == "--out" || s.starts_with("--out=") => {
                args.out = PathBuf::from(flag_value("--out", s, &mut it)?);
            }
            s if s.starts_with("--") => return Err(format!("unknown flag: {s}")),
            "list" => args.list = true,
            // `all` expands in place, composes with explicit ids
            // anywhere in the list, and repeated ids dedupe below.
            "all" => args.ids.extend(EXPERIMENTS.iter().map(|id| id.to_string())),
            other => args.ids.push(other.to_string()),
        }
    }
    if args.force && args.no_cache {
        return Err("--force and --no-cache are mutually exclusive".to_string());
    }
    // Dedupe, keeping first occurrence so explicit ordering survives.
    let mut seen = std::collections::HashSet::new();
    args.ids.retain(|id| seen.insert(id.clone()));
    Ok(args)
}

/// Hidden test hook: a job that always panics, for exercising the
/// orchestrator's fault isolation end-to-end (not listed by `list`).
const INJECT_PANIC: &str = "inject-panic";

fn inject_panic_spec() -> JobSpec {
    JobSpec::new(
        INJECT_PANIC,
        "deliberately panicking job (fault-isolation test hook)",
        || panic!("inject-panic: deliberate failure"),
    )
    .cost_hint(0.01)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Offline analysis subcommands route straight into swarm-trace;
    // they take no orchestrator flags.
    match raw.first().map(String::as_str) {
        Some("trace") => return ExitCode::from(swarm_trace::cli::trace_main(&raw[1..]) as u8),
        Some("diff") => return ExitCode::from(swarm_trace::cli::diff_main(&raw[1..]) as u8),
        Some("net-report") => {
            return ExitCode::from(swarm_trace::cli::net_report_main(&raw[1..]) as u8)
        }
        Some("watch") => return ExitCode::from(swarm_net::watch_main(&raw[1..]) as u8),
        _ => {}
    }
    let wants_help = raw.iter().any(|a| a == "help" || a == "--help");
    let args = match parse(raw) {
        Ok(args) => args,
        Err(e) => {
            log_error!("repro", "{e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.quiet {
        swarm_obs::set_log_level(Level::Warn);
    }
    if wants_help {
        eprintln!("{USAGE}");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        return ExitCode::SUCCESS;
    }
    if args.list {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args.ids.is_empty() {
        eprintln!("{USAGE}");
        eprintln!("experiments: {}", EXPERIMENTS.join(", "));
        return ExitCode::from(2);
    }

    let mut specs = Vec::with_capacity(args.ids.len());
    for id in &args.ids {
        if id == INJECT_PANIC {
            specs.push(inject_panic_spec());
            continue;
        }
        match lab::job_spec(id, args.quick) {
            Some(spec) => specs.push(spec),
            None => {
                log_error!("repro", "unknown experiment: {id}");
                eprintln!("experiments: {}", EXPERIMENTS.join(", "));
                return ExitCode::from(2);
            }
        }
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = args.jobs.unwrap_or(cores);
    let cfg = RunConfig {
        workers,
        // An explicit --jobs above the core count is an instruction to
        // oversubscribe; the budget funds one thread per worker so the
        // pool is never silently clamped below what was asked for.
        thread_budget: cores.max(workers),
        quick: args.quick,
        cache: if args.force {
            CacheMode::Refresh
        } else if args.no_cache {
            CacheMode::Off
        } else {
            CacheMode::Use
        },
        progress: true,
        echo_text: true,
        telemetry: args.telemetry.as_ref().map(|dir| {
            if dir.as_os_str().is_empty() {
                args.out.join("telemetry")
            } else {
                dir.clone()
            }
        }),
        ..RunConfig::new(args.out.clone())
    };

    if args.dry_run {
        let mut plan: Vec<&JobSpec> = specs.iter().collect();
        plan.sort_by(|a, b| {
            b.cost_hint
                .partial_cmp(&a.cost_hint)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        eprintln!(
            "dry run: {} job(s), {} worker(s), thread budget {}, dispatch order:",
            plan.len(),
            cfg.workers.min(plan.len().max(1)),
            cfg.thread_budget,
        );
        for spec in plan {
            println!(
                "{:<20} est {:>5.1} s  threads<={}",
                spec.id, spec.cost_hint, spec.threads_hint
            );
        }
        return ExitCode::SUCCESS;
    }

    match swarm_lab::run(&specs, &cfg) {
        Ok(report) => {
            // The scheduler saved the manifest before returning, so by
            // the time anything below prints the run record is already
            // durable. All final reporting happens under one console
            // guard (raw writes, not the log macros — `log` takes the
            // same lock) so late worker output cannot interleave with
            // it.
            let _io = swarm_obs::console();
            let m = &report.manifest;
            if let Some(table) = &report.telemetry_report {
                if let Some(dir) = &report.telemetry_dir {
                    println!("telemetry ({}):", dir.display());
                }
                println!("{table}");
            }
            eprintln!(
                "[{} job(s) in {:.1} s — {} ok, {} failed, {} cache hit(s); manifest: {}]",
                m.jobs.len(),
                m.wall_s,
                m.jobs.len() - m.failures().count(),
                m.failures().count(),
                m.cache_hits(),
                report.manifest_path.display(),
            );
            if report.all_ok() {
                ExitCode::SUCCESS
            } else {
                for failed in m.failures() {
                    eprintln!(
                        "failed: {} — {}",
                        failed.id,
                        failed.error.as_deref().unwrap_or("(no error recorded)")
                    );
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            log_error!("repro", "could not write run manifest: {e}");
            ExitCode::FAILURE
        }
    }
}
