//! `bt_idle` — wall-clock benchmark for the quiescence fast-forward on
//! long-horizon, mostly-unavailable swarms.
//!
//! ```text
//! bt_idle [--quick] [--reps N] [--out BENCH_bt_idle.json]
//! ```
//!
//! Three scenarios bracket the feature's envelope:
//!
//! * `high_unavailability` — the publisher seeds once for ~30 s and
//!   never returns; the sparse-arrival crowd converges on the seeded
//!   pieces and then idles, blocked, for the rest of a long horizon.
//!   Nearly every tick is a provable no-op; the fast-forward must win
//!   ≥ 10× wall-clock here (the quick smoke run uses a shorter horizon
//!   and a looser ≥ 5× bar).
//! * `mid_unavailability` — same crowd, but the publisher returns every
//!   ~3000 s; each reseeding burst breaks the quiescent stretch.
//!   Speedup must land strictly between the two extremes: the win
//!   grows with unavailability.
//! * `always_on` — a busy, always-seeded control where the detector
//!   almost never fires. Its per-tick disqualification checks may cost
//!   at most 2% over the dense loop (10% in quick mode, where the runs
//!   are short enough for scheduler noise to dominate).
//!
//! Every scenario also asserts that the elided run's serialized
//! `BtResult` is byte-for-byte identical to the dense run's, so the CI
//! smoke job doubles as an end-to-end equivalence check in release
//! mode. Exits non-zero if any bar is missed.

use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;
use swarm_bt::{run, BtConfig, BtPublisher};

const USAGE: &str = "usage: bt_idle [--quick] [--reps N] [--out FILE]";

struct Scenario {
    id: &'static str,
    description: &'static str,
    cfg: BtConfig,
    /// Lower bound on dense/elided wall-clock ratio, if any.
    min_speedup: Option<f64>,
    /// Upper bound on `elided/dense - 1`, if any (control scenarios).
    max_overhead: Option<f64>,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    vec![
        Scenario {
            id: "high_unavailability",
            description: "K=4, publisher seeds for ~30 s then never \
                          returns: sparse arrivals (1/300 s, PEX off) \
                          converge on the seeded pieces and the blocked \
                          crowd then idles for the rest of the horizon",
            cfg: BtConfig {
                arrival_rate: 1.0 / 300.0,
                publisher: BtPublisher::OnOff {
                    on_mean: 30.0,
                    off_mean: 1.0e9,
                    initially_on: true,
                },
                horizon: if quick { 60_000 } else { 300_000 },
                drain_ticks: 600,
                pex_interval: 0,
                ..BtConfig::paper_section_4_3(4, 7)
            },
            min_speedup: Some(if quick { 5.0 } else { 10.0 }),
            max_overhead: None,
        },
        Scenario {
            id: "mid_unavailability",
            description: "K=4, publisher on 30 s / off 3000 s (~99% off) \
                          but returning: quiescent stretches are broken \
                          by periodic reseeding bursts",
            cfg: BtConfig {
                arrival_rate: 1.0 / 300.0,
                publisher: BtPublisher::OnOff {
                    on_mean: 30.0,
                    off_mean: 3_000.0,
                    initially_on: true,
                },
                horizon: if quick { 30_000 } else { 100_000 },
                drain_ticks: 600,
                pex_interval: 0,
                ..BtConfig::paper_section_4_3(4, 7)
            },
            min_speedup: Some(if quick { 1.2 } else { 1.5 }),
            max_overhead: None,
        },
        Scenario {
            id: "always_on",
            description: "K=2, always-seeded busy swarm (detector control)",
            cfg: BtConfig {
                publisher: BtPublisher::AlwaysOn,
                horizon: if quick { 600 } else { 1_200 },
                drain_ticks: 300,
                ..BtConfig::paper_section_4_3(2, 7)
            },
            min_speedup: None,
            max_overhead: Some(if quick { 0.10 } else { 0.02 }),
        },
    ]
}

/// Min/median wall seconds over `reps` timed runs (after one warmup).
fn time_runs(cfg: &BtConfig, reps: usize) -> (f64, f64) {
    std::hint::black_box(run(cfg));
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(run(cfg));
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[0], samples[samples.len() / 2])
}

#[derive(Debug, Serialize)]
struct ScenarioResult {
    id: &'static str,
    description: &'static str,
    horizon: u64,
    drain_ticks: u64,
    dense_min_s: f64,
    dense_median_s: f64,
    elided_min_s: f64,
    elided_median_s: f64,
    /// `dense_min_s / elided_min_s`.
    speedup: f64,
    /// Serialized `BtResult` equality between the dense and elided run.
    results_equal: bool,
    requirement: String,
    pass: bool,
}

fn run_scenario(s: &Scenario, reps: usize) -> ScenarioResult {
    let dense_cfg = BtConfig {
        disable_fast_forward: true,
        ..s.cfg.clone()
    };
    let dense_result = serde_json::to_string(&run(&dense_cfg)).expect("serialize dense");
    let elided_result = serde_json::to_string(&run(&s.cfg)).expect("serialize elided");
    let results_equal = dense_result == elided_result;

    let (dense_min_s, dense_median_s) = time_runs(&dense_cfg, reps);
    let (elided_min_s, elided_median_s) = time_runs(&s.cfg, reps);
    let speedup = dense_min_s / elided_min_s;
    let overhead = elided_min_s / dense_min_s - 1.0;

    let (requirement, bar_met) = match (s.min_speedup, s.max_overhead) {
        (Some(min), _) => (format!("speedup >= {min}x"), speedup >= min),
        (None, Some(max)) => (format!("overhead <= {:.0}%", max * 100.0), overhead <= max),
        (None, None) => ("record only".to_string(), true),
    };
    ScenarioResult {
        id: s.id,
        description: s.description,
        horizon: s.cfg.horizon,
        drain_ticks: s.cfg.drain_ticks,
        dense_min_s,
        dense_median_s,
        elided_min_s,
        elided_median_s,
        speedup,
        results_equal,
        requirement,
        pass: bar_met && results_equal,
    }
}

#[derive(Debug, Serialize)]
struct Report {
    quick: bool,
    reps: usize,
    scenarios: Vec<ScenarioResult>,
    /// Speedup must grow with publisher unavailability.
    speedup_monotone: bool,
    pass: bool,
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut reps = 0usize;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(n) => reps = n,
                    Err(_) => {
                        eprintln!("bad --reps `{v}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if reps == 0 {
        reps = if quick { 3 } else { 5 };
    }

    let results: Vec<ScenarioResult> = scenarios(quick)
        .iter()
        .map(|s| {
            let r = run_scenario(s, reps);
            eprintln!(
                "{:22} dense {:8.3}s  elided {:8.3}s  speedup {:6.2}x  \
                 results {}  [{}] — {}",
                r.id,
                r.dense_min_s,
                r.elided_min_s,
                r.speedup,
                if r.results_equal { "equal" } else { "DIVERGED" },
                r.requirement,
                if r.pass { "ok" } else { "FAIL" },
            );
            r
        })
        .collect();

    let high = results.iter().find(|r| r.id == "high_unavailability");
    let mid = results.iter().find(|r| r.id == "mid_unavailability");
    let speedup_monotone = match (high, mid) {
        (Some(h), Some(m)) => h.speedup > m.speedup,
        _ => false,
    };
    if !speedup_monotone {
        eprintln!("speedup does not grow with unavailability — FAIL");
    }
    let pass = speedup_monotone && results.iter().all(|r| r.pass);
    let report = Report {
        quick,
        reps,
        scenarios: results,
        speedup_monotone,
        pass,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error: write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => println!("{json}"),
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
