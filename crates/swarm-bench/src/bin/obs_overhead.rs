//! `obs_overhead` — CI guard for the telemetry cost on the swarm-bt
//! tick loop.
//!
//! ```text
//! obs_overhead run --mode on  --reps 7 --out instr.json
//! obs_overhead run --mode off --reps 7 --out base.json
//! obs_overhead compare instr.json base.json \
//!     --max-regression 0.03 --out BENCH_obs_overhead.json
//! ```
//!
//! `run` times full §4.3-style engine runs (1200 s of swarm time plus a
//! 600-tick drain, K=4) with telemetry recording either on or off and
//! writes min/median wall seconds. CI builds the binary twice — once as
//! is and once with `--features obs-off` (recording compiled out) — so
//! `compare` can put a bound on both the enabled overhead and the
//! compiled-out residue. `compare` exits nonzero when the min-over-min
//! ratio regresses past `--max-regression` (default 3%).

use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::time::Instant;
use swarm_bt::{run, BtConfig};

const USAGE: &str = "usage: obs_overhead run --mode <on|off> [--reps N] [--out FILE]
       obs_overhead compare <INSTR.json> <BASE.json> [--max-regression F] [--out FILE]";

#[derive(Debug, Serialize, Deserialize)]
struct RunResult {
    /// Whether `swarm_obs` recording was enabled during the timed runs.
    mode: String,
    /// True when the binary was built with the `obs-off` feature (every
    /// probe compiled down to nothing regardless of `mode`).
    compiled_out: bool,
    reps: usize,
    min_s: f64,
    median_s: f64,
}

fn bench_config() -> BtConfig {
    BtConfig {
        drain_ticks: 600,
        ..BtConfig::paper_section_4_3(4, 7)
    }
}

fn time_runs(reps: usize) -> (f64, f64) {
    // One untimed warmup to populate caches and the metric registry.
    std::hint::black_box(run(&bench_config()));
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let cfg = bench_config();
        let t0 = Instant::now();
        std::hint::black_box(run(&cfg));
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    (samples[0], samples[samples.len() / 2])
}

fn write_or_print(out: Option<&str>, json: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, json).map_err(|e| format!("write {path}: {e}")),
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn cmd_run(mut args: std::vec::IntoIter<String>) -> Result<(), String> {
    let mut mode = None;
    let mut reps = 5usize;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => mode = Some(args.next().ok_or("--mode needs on|off")?),
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                reps = v.parse().map_err(|_| format!("bad --reps `{v}`"))?;
            }
            "--out" => out = Some(args.next().ok_or("--out needs a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let mode = mode.ok_or("--mode is required")?;
    match mode.as_str() {
        "on" => swarm_obs::set_enabled(true),
        "off" => swarm_obs::set_enabled(false),
        other => return Err(format!("--mode expects on|off, got `{other}`")),
    }
    let (min_s, median_s) = time_runs(reps.max(1));
    let result = RunResult {
        mode,
        compiled_out: cfg!(feature = "obs-off"),
        reps: reps.max(1),
        min_s,
        median_s,
    };
    let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
    write_or_print(out.as_deref(), &json)
}

#[derive(Debug, Serialize)]
struct Comparison {
    instrumented: RunResult,
    baseline: RunResult,
    /// `instrumented.min_s / baseline.min_s - 1`.
    overhead: f64,
    max_regression: f64,
    pass: bool,
}

fn load(path: &str) -> Result<RunResult, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_compare(mut args: std::vec::IntoIter<String>) -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut max_regression = 0.03f64;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regression" => {
                let v = args.next().ok_or("--max-regression needs a value")?;
                max_regression = v
                    .parse()
                    .map_err(|_| format!("bad --max-regression `{v}`"))?;
            }
            "--out" => out = Some(args.next().ok_or("--out needs a value")?),
            other => positional.push(other.to_string()),
        }
    }
    let [instr_path, base_path] = positional.as_slice() else {
        return Err("compare needs exactly two result files".to_string());
    };
    let instrumented = load(instr_path)?;
    let baseline = load(base_path)?;
    if baseline.min_s <= 0.0 {
        return Err("baseline min wall time is not positive".to_string());
    }
    let overhead = instrumented.min_s / baseline.min_s - 1.0;
    let pass = overhead <= max_regression;
    let cmp = Comparison {
        instrumented,
        baseline,
        overhead,
        max_regression,
        pass,
    };
    let json = serde_json::to_string_pretty(&cmp).map_err(|e| e.to_string())?;
    write_or_print(out.as_deref(), &json)?;
    eprintln!(
        "obs overhead: {:+.2}% (limit {:.2}%) — {}",
        cmp.overhead * 100.0,
        cmp.max_regression * 100.0,
        if cmp.pass { "ok" } else { "REGRESSION" },
    );
    Ok(pass)
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    let outcome = match raw.next().as_deref() {
        Some("run") => cmd_run(raw).map(|()| true),
        Some("compare") => cmd_compare(raw),
        _ => Err("missing subcommand".to_string()),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
