//! `obs_overhead` — CI guard for the telemetry cost on the hot loops:
//! the swarm-bt tick loop and the live networked engine's loopback
//! coordinator.
//!
//! ```text
//! obs_overhead run --mode on  --engine bt  --reps 7 --out bt_instr.json
//! obs_overhead run --mode off --engine bt  --reps 7 --out bt_base.json
//! obs_overhead run --mode on  --engine net --reps 7 --out net_instr.json
//! obs_overhead run --mode off --engine net --reps 7 --out net_base.json
//! obs_overhead compare bt_instr.json bt_base.json \
//!     net_instr.json net_base.json \
//!     --max-regression 0.03 --out BENCH_obs_overhead.json
//! ```
//!
//! `run --engine bt` times full §4.3-style engine runs (1200 s of swarm
//! time plus a 600-tick drain, K=4); `--engine net` times the scripted
//! loopback equivalence scenario on the single-thread host — the
//! configuration whose per-frame lifecycle probes are the densest.
//! Telemetry recording is either on or off and the result carries
//! min/median wall seconds. CI builds the binary twice — once as is and
//! once with `--features obs-off` (recording compiled out) — so
//! `compare` can put a bound on both the enabled overhead and the
//! compiled-out residue. `compare` takes one `(instrumented, baseline)`
//! file pair per engine, writes one comparison keyed by engine, and
//! exits nonzero when any engine's min-over-min ratio regresses past
//! `--max-regression` (default 3%).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;
use swarm_bt::{run, BtConfig};
use swarm_net::{run_live, scenarios, HostMode};

const USAGE: &str =
    "usage: obs_overhead run --mode <on|off> [--engine <bt|net>] [--reps N] [--out FILE]
       obs_overhead compare <INSTR.json> <BASE.json> [<INSTR.json> <BASE.json>]... \\
           [--max-regression F] [--out FILE]";

#[derive(Debug, Serialize, Deserialize)]
struct RunResult {
    /// Which hot loop was timed: `bt` or `net`.
    engine: String,
    /// Whether `swarm_obs` recording was enabled during the timed runs.
    mode: String,
    /// True when the binary was built with the `obs-off` feature (every
    /// probe compiled down to nothing regardless of `mode`).
    compiled_out: bool,
    reps: usize,
    min_s: f64,
    median_s: f64,
}

fn bt_config() -> BtConfig {
    BtConfig {
        drain_ticks: 600,
        ..BtConfig::paper_section_4_3(4, 7)
    }
}

fn time_runs(engine: &str, reps: usize) -> Result<(f64, f64), String> {
    let timed: Box<dyn Fn()> = match engine {
        "bt" => Box::new(|| {
            std::hint::black_box(run(&bt_config()));
        }),
        "net" => Box::new(|| {
            std::hint::black_box(run_live(&scenarios::scenario_a(42), HostMode::SingleThread));
        }),
        other => return Err(format!("--engine expects bt|net, got `{other}`")),
    };
    // One untimed warmup to populate caches and the metric registry.
    timed();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        timed();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    Ok((samples[0], samples[samples.len() / 2]))
}

fn write_or_print(out: Option<&str>, json: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, json).map_err(|e| format!("write {path}: {e}")),
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn cmd_run(mut args: std::vec::IntoIter<String>) -> Result<(), String> {
    let mut mode = None;
    let mut engine = "bt".to_string();
    let mut reps = 5usize;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => mode = Some(args.next().ok_or("--mode needs on|off")?),
            "--engine" => engine = args.next().ok_or("--engine needs bt|net")?,
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                reps = v.parse().map_err(|_| format!("bad --reps `{v}`"))?;
            }
            "--out" => out = Some(args.next().ok_or("--out needs a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let mode = mode.ok_or("--mode is required")?;
    match mode.as_str() {
        "on" => swarm_obs::set_enabled(true),
        "off" => swarm_obs::set_enabled(false),
        other => return Err(format!("--mode expects on|off, got `{other}`")),
    }
    let (min_s, median_s) = time_runs(&engine, reps.max(1))?;
    let result = RunResult {
        engine,
        mode,
        compiled_out: cfg!(feature = "obs-off"),
        reps: reps.max(1),
        min_s,
        median_s,
    };
    let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
    write_or_print(out.as_deref(), &json)
}

#[derive(Debug, Serialize)]
struct Comparison {
    instrumented: RunResult,
    baseline: RunResult,
    /// `instrumented.min_s / baseline.min_s - 1`.
    overhead: f64,
    max_regression: f64,
    pass: bool,
}

fn load(path: &str) -> Result<RunResult, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_compare(mut args: std::vec::IntoIter<String>) -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut max_regression = 0.03f64;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regression" => {
                let v = args.next().ok_or("--max-regression needs a value")?;
                max_regression = v
                    .parse()
                    .map_err(|_| format!("bad --max-regression `{v}`"))?;
            }
            "--out" => out = Some(args.next().ok_or("--out needs a value")?),
            other => positional.push(other.to_string()),
        }
    }
    if positional.is_empty() || positional.len() % 2 != 0 {
        return Err("compare needs (instrumented, baseline) file pairs".to_string());
    }
    let mut comparisons: BTreeMap<String, Comparison> = BTreeMap::new();
    let mut all_pass = true;
    for pair in positional.chunks(2) {
        let instrumented = load(&pair[0])?;
        let baseline = load(&pair[1])?;
        if instrumented.engine != baseline.engine {
            return Err(format!(
                "engine mismatch: {} is `{}`, {} is `{}`",
                pair[0], instrumented.engine, pair[1], baseline.engine
            ));
        }
        if baseline.min_s <= 0.0 {
            return Err(format!(
                "{}: baseline min wall time is not positive",
                baseline.engine
            ));
        }
        let overhead = instrumented.min_s / baseline.min_s - 1.0;
        let pass = overhead <= max_regression;
        all_pass &= pass;
        eprintln!(
            "obs overhead [{}]: {:+.2}% (limit {:.2}%) — {}",
            instrumented.engine,
            overhead * 100.0,
            max_regression * 100.0,
            if pass { "ok" } else { "REGRESSION" },
        );
        let engine = instrumented.engine.clone();
        if comparisons
            .insert(
                engine.clone(),
                Comparison {
                    instrumented,
                    baseline,
                    overhead,
                    max_regression,
                    pass,
                },
            )
            .is_some()
        {
            return Err(format!("duplicate engine `{engine}` in compare pairs"));
        }
    }
    let json = serde_json::to_string_pretty(&comparisons).map_err(|e| e.to_string())?;
    write_or_print(out.as_deref(), &json)?;
    Ok(all_pass)
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    let outcome = match raw.next().as_deref() {
        Some("run") => cmd_run(raw).map(|()| true),
        Some("compare") => cmd_compare(raw),
        _ => Err("missing subcommand".to_string()),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
