//! `obs_overhead` — CI guard for the telemetry cost on the hot loops:
//! the swarm-bt tick loop and the live networked engine's loopback
//! coordinator.
//!
//! ```text
//! obs_overhead run --mode on  --engine bt  --reps 7 --out bt_instr.json
//! obs_overhead run --mode off --engine bt  --reps 7 --out bt_base.json
//! obs_overhead run --mode on  --engine net --reps 7 --out net_instr.json
//! obs_overhead run --mode off --engine net --reps 7 --out net_base.json
//! obs_overhead marginal --engine bt-ts --reps 30 \
//!     --out-on bt_ts_instr.json --out-off bt_ts_base.json
//! obs_overhead compare bt_instr.json bt_base.json \
//!     net_instr.json net_base.json \
//!     bt_ts_instr.json bt_ts_base.json \
//!     --max-regression 0.03 --budget net=1.0 --out BENCH_obs_overhead.json
//! ```
//!
//! `run --engine bt` times full §4.3-style engine runs (1200 s of swarm
//! time plus a 600-tick drain, K=4); `--engine bt-ts` times an
//! idle-heavy single-file run dominated by the fast-forward path, where
//! the time-series recorder's window-boundary flushes are the marginal
//! cost; `--engine net` times the scripted loopback equivalence
//! scenario on the single-thread host — the configuration whose
//! per-frame lifecycle probes are the densest.
//! Telemetry recording is either on or off and the result carries
//! min/median wall seconds. CI builds the binary twice — once as is and
//! once with `--features obs-off` (recording compiled out) — so
//! `compare` can put a bound on both the enabled overhead and the
//! compiled-out residue. `compare` takes one `(instrumented, baseline)`
//! file pair per engine, writes one comparison keyed by engine, and
//! exits nonzero when any engine's min-over-min ratio regresses past
//! its bound: `--max-regression` (default 3%) unless overridden
//! per-engine with `--budget ENGINE=F`.
//!
//! Each arm bounds a different quantity, so each gets the pairing (and
//! budget) that makes its bound meaningful:
//!
//! * `bt` — telemetry on vs compiled out, 3%: the classic guard on the
//!   dense tick loop, where per-tick probe cost amortizes over real
//!   per-tick work.
//! * `bt-ts` — series on vs series off, both under full telemetry, 3%:
//!   the *marginal* cost of the window recorder on a mostly-idle run.
//!   Comparing against compiled-out telemetry here would drown the
//!   recorder in the fixed per-dense-tick probe cost, which on a
//!   sparse swarm is structurally ~30% of the trivial tick work. The
//!   series toggle is runtime-switchable, so this arm uses `marginal`
//!   (interleaved A/B in one process) rather than two `run`
//!   invocations whose inter-process timing drift would swamp a 3%
//!   bound.
//! * `net` — telemetry on vs compiled out, budget 1.0: the live
//!   engine's per-frame lifecycle tracing roughly doubles the
//!   virtual-time loopback microscenario, whose per-frame work is a
//!   few map updates. The budget documents that and still catches
//!   runaway regressions (per-byte emission, accidental O(n²) scans).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;
use swarm_bt::{run, BtConfig};
use swarm_net::{run_live, scenarios, HostMode};

const USAGE: &str =
    "usage: obs_overhead run --mode <on|off> [--engine <bt|bt-ts|net>] [--series <on|off>] \\
           [--reps N] [--out FILE]
       obs_overhead marginal [--engine <bt|bt-ts|net>] [--reps N] \\
           [--out-on FILE] [--out-off FILE]
       obs_overhead compare <INSTR.json> <BASE.json> [<INSTR.json> <BASE.json>]... \\
           [--max-regression F] [--budget ENGINE=F] [--out FILE]";

#[derive(Debug, Serialize, Deserialize)]
struct RunResult {
    /// Which hot loop was timed: `bt`, `bt-ts` or `net`.
    engine: String,
    /// Whether `swarm_obs` recording was enabled during the timed runs.
    mode: String,
    /// True when the binary was built with the `obs-off` feature (every
    /// probe compiled down to nothing regardless of `mode`).
    compiled_out: bool,
    /// True when windowed time-series recording was disabled during the
    /// timed runs (`--series off` isolates the recorder's marginal cost
    /// under otherwise-identical telemetry). Absent in old files = on.
    #[serde(default)]
    series_off: bool,
    reps: usize,
    min_s: f64,
    median_s: f64,
}

fn bt_config() -> BtConfig {
    BtConfig {
        drain_ticks: 600,
        ..BtConfig::paper_section_4_3(4, 7)
    }
}

/// Idle-heavy single-file run: long horizon, sparse arrivals, a mostly
/// offline publisher and lingering seeds. Most ticks are quiescent, so
/// the run is dominated by the fast-forward path — exactly where the
/// time-series recorder's window-boundary flushes (including the flat
/// windows emitted across elided spans) add their cost.
fn bt_ts_config() -> BtConfig {
    BtConfig {
        arrival_rate: 1.0 / 120.0,
        publisher: swarm_bt::BtPublisher::OnOff {
            on_mean: 120.0,
            off_mean: 900.0,
            initially_on: true,
        },
        linger_mean: Some(60.0),
        // Long enough (~10ms/run) that the min-of-reps timing is stable
        // against single-core scheduling jitter; the recorder's per-window
        // cost is flat, so overhead scales with neither choice.
        horizon: 24_000,
        drain_ticks: 1_200,
        ..BtConfig::paper_section_4_3(1, 97)
    }
}

fn timed_closure(engine: &str) -> Result<Box<dyn Fn()>, String> {
    Ok(match engine {
        "bt" => Box::new(|| {
            std::hint::black_box(run(&bt_config()));
        }),
        "bt-ts" => Box::new(|| {
            std::hint::black_box(run(&bt_ts_config()));
            // The point of this arm is the recorder's steady-state cost,
            // not unbounded registry growth across reps.
            let _ = swarm_obs::take_series("bt");
        }),
        "net" => Box::new(|| {
            std::hint::black_box(run_live(&scenarios::scenario_a(42), HostMode::SingleThread));
        }),
        other => return Err(format!("--engine expects bt|bt-ts|net, got `{other}`")),
    })
}

fn summarize(mut samples: Vec<f64>) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    (samples[0], samples[samples.len() / 2])
}

fn time_runs(engine: &str, reps: usize) -> Result<(f64, f64), String> {
    let timed = timed_closure(engine)?;
    // One untimed warmup to populate caches and the metric registry.
    timed();
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        timed();
        samples.push(t0.elapsed().as_secs_f64());
    }
    Ok(summarize(samples))
}

fn write_or_print(out: Option<&str>, json: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, json).map_err(|e| format!("write {path}: {e}")),
        None => {
            println!("{json}");
            Ok(())
        }
    }
}

fn cmd_run(mut args: std::vec::IntoIter<String>) -> Result<(), String> {
    let mut mode = None;
    let mut engine = "bt".to_string();
    let mut series_on = true;
    let mut reps = 5usize;
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => mode = Some(args.next().ok_or("--mode needs on|off")?),
            "--engine" => engine = args.next().ok_or("--engine needs bt|bt-ts|net")?,
            "--series" => {
                series_on = match args.next().ok_or("--series needs on|off")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--series expects on|off, got `{other}`")),
                }
            }
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                reps = v.parse().map_err(|_| format!("bad --reps `{v}`"))?;
            }
            "--out" => out = Some(args.next().ok_or("--out needs a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let mode = mode.ok_or("--mode is required")?;
    match mode.as_str() {
        "on" => swarm_obs::set_enabled(true),
        "off" => swarm_obs::set_enabled(false),
        other => return Err(format!("--mode expects on|off, got `{other}`")),
    }
    swarm_obs::set_series_enabled(series_on);
    let (min_s, median_s) = time_runs(&engine, reps.max(1))?;
    let result = RunResult {
        engine,
        mode,
        compiled_out: cfg!(feature = "obs-off"),
        series_off: !series_on,
        reps: reps.max(1),
        min_s,
        median_s,
    };
    let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
    write_or_print(out.as_deref(), &json)
}

/// Interleaved A/B measurement of the window recorder's marginal cost:
/// reps alternate series-on / series-off within one process, so slow
/// timing drift (single-core scheduling, frequency scaling) hits both
/// arms equally and cancels out of the min-over-min ratio. Two separate
/// `run` invocations measure the same thing but race the drift — on a
/// shared 1-core box the inter-invocation spread can exceed the bound
/// being enforced.
fn cmd_marginal(mut args: std::vec::IntoIter<String>) -> Result<(), String> {
    let mut engine = "bt-ts".to_string();
    let mut reps = 30usize;
    let mut out_on = None;
    let mut out_off = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => engine = args.next().ok_or("--engine needs bt|bt-ts|net")?,
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                reps = v.parse().map_err(|_| format!("bad --reps `{v}`"))?;
            }
            "--out-on" => out_on = Some(args.next().ok_or("--out-on needs a value")?),
            "--out-off" => out_off = Some(args.next().ok_or("--out-off needs a value")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let reps = reps.max(1);
    swarm_obs::set_enabled(true);
    let timed = timed_closure(&engine)?;
    for on in [true, false] {
        swarm_obs::set_series_enabled(on);
        timed(); // untimed warmup of each arm
    }
    let mut with_series = Vec::with_capacity(reps);
    let mut without_series = Vec::with_capacity(reps);
    for _ in 0..reps {
        for (on, samples) in [(true, &mut with_series), (false, &mut without_series)] {
            swarm_obs::set_series_enabled(on);
            let t0 = Instant::now();
            timed();
            samples.push(t0.elapsed().as_secs_f64());
        }
    }
    swarm_obs::set_series_enabled(true);
    let mk = |series_off: bool, (min_s, median_s): (f64, f64)| RunResult {
        engine: engine.clone(),
        mode: "on".to_string(),
        compiled_out: cfg!(feature = "obs-off"),
        series_off,
        reps,
        min_s,
        median_s,
    };
    let on = mk(false, summarize(with_series));
    let off = mk(true, summarize(without_series));
    for (result, out) in [(&on, &out_on), (&off, &out_off)] {
        let json = serde_json::to_string_pretty(result).map_err(|e| e.to_string())?;
        write_or_print(out.as_deref(), &json)?;
    }
    Ok(())
}

#[derive(Debug, Serialize)]
struct Comparison {
    instrumented: RunResult,
    baseline: RunResult,
    /// `instrumented.min_s / baseline.min_s - 1`.
    overhead: f64,
    /// The bound applied to this engine (the default `--max-regression`
    /// or its `--budget ENGINE=F` override).
    max_regression: f64,
    pass: bool,
}

fn load(path: &str) -> Result<RunResult, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&raw).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_compare(mut args: std::vec::IntoIter<String>) -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut max_regression = 0.03f64;
    let mut budgets: BTreeMap<String, f64> = BTreeMap::new();
    let mut out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regression" => {
                let v = args.next().ok_or("--max-regression needs a value")?;
                max_regression = v
                    .parse()
                    .map_err(|_| format!("bad --max-regression `{v}`"))?;
            }
            // Per-engine override, mirroring `repro diff`'s
            // `--metric NAME=R`: arms measuring structurally different
            // quantities get their own budgets.
            "--budget" => {
                let v = args.next().ok_or("--budget needs ENGINE=F")?;
                let (engine, bound) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --budget `{v}` (want ENGINE=F)"))?;
                let bound: f64 = bound
                    .parse()
                    .map_err(|_| format!("bad --budget bound in `{v}`"))?;
                budgets.insert(engine.to_string(), bound);
            }
            "--out" => out = Some(args.next().ok_or("--out needs a value")?),
            other => positional.push(other.to_string()),
        }
    }
    if positional.is_empty() || positional.len() % 2 != 0 {
        return Err("compare needs (instrumented, baseline) file pairs".to_string());
    }
    let mut comparisons: BTreeMap<String, Comparison> = BTreeMap::new();
    let mut all_pass = true;
    for pair in positional.chunks(2) {
        let instrumented = load(&pair[0])?;
        let baseline = load(&pair[1])?;
        if instrumented.engine != baseline.engine {
            return Err(format!(
                "engine mismatch: {} is `{}`, {} is `{}`",
                pair[0], instrumented.engine, pair[1], baseline.engine
            ));
        }
        if baseline.min_s <= 0.0 {
            return Err(format!(
                "{}: baseline min wall time is not positive",
                baseline.engine
            ));
        }
        let overhead = instrumented.min_s / baseline.min_s - 1.0;
        let budget = budgets
            .get(&instrumented.engine)
            .copied()
            .unwrap_or(max_regression);
        let pass = overhead <= budget;
        all_pass &= pass;
        eprintln!(
            "obs overhead [{}]: {:+.2}% (limit {:.2}%) — {}",
            instrumented.engine,
            overhead * 100.0,
            budget * 100.0,
            if pass { "ok" } else { "REGRESSION" },
        );
        let engine = instrumented.engine.clone();
        if comparisons
            .insert(
                engine.clone(),
                Comparison {
                    instrumented,
                    baseline,
                    overhead,
                    max_regression: budget,
                    pass,
                },
            )
            .is_some()
        {
            return Err(format!("duplicate engine `{engine}` in compare pairs"));
        }
    }
    let json = serde_json::to_string_pretty(&comparisons).map_err(|e| e.to_string())?;
    write_or_print(out.as_deref(), &json)?;
    Ok(all_pass)
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    let outcome = match raw.next().as_deref() {
        Some("run") => cmd_run(raw).map(|()| true),
        Some("marginal") => cmd_marginal(raw).map(|()| true),
        Some("compare") => cmd_compare(raw),
        _ => Err("missing subcommand".to_string()),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
