//! `catalog_bench` — wall-clock scaling and shard-count-invariance
//! benchmark for the sharded catalog runtime.
//!
//! ```text
//! catalog_bench [--quick] [--reps N] [--out BENCH_catalog.json]
//!               [--telemetry DIR]
//! ```
//!
//! Generates a catalog (full mode: ~1% of the paper's 1.09M-swarm
//! snapshot, i.e. >10K swarms serving on the order of a million peer
//! arrivals over a 7-month horizon), then ticks the *entire* catalog
//! through `swarm-catalog`'s work-stealing shard pool at each thread
//! count, checking two things:
//!
//! * **Invariance** — every deterministic output (the serialized
//!   per-swarm summaries and every `catalog.*` counter) must be
//!   bit-identical at every thread count. Any drift is a scheduling
//!   leak into the per-swarm RNG streams and fails the run.
//! * **Scaling** — full mode requires ≥3× speedup at 8 threads over 1
//!   (min-of-reps wall clock) *when the machine has the cores to show
//!   it*: a box with fewer physical cores than the largest thread
//!   count cannot exhibit parallel speedup, so the bar is recorded as
//!   waived (with the core count) instead of failing vacuously. Quick
//!   mode — the CI smoke job, which runs on small shared runners —
//!   always only records the ratio.
//!
//! `--telemetry DIR` additionally enables `swarm-obs` recording and
//! writes each thread count's registry delta to `DIR/t<n>/metrics.json`
//! plus its weekly window series to `DIR/t<n>/timeseries.jsonl`, so
//! `repro diff DIR/t1 DIR/t<n>` (and `repro diff --timeseries ...`) can
//! re-verify counter and trend invariance offline (the CI job does
//! exactly that).

use serde::Serialize;
use std::process::ExitCode;
use swarm_catalog::{run_catalog, CatalogRun, CatalogRunConfig};
use swarm_measurement::{generate_catalog, CatalogConfig, Swarm};

const USAGE: &str = "usage: catalog_bench [--quick] [--reps N] [--out FILE] [--telemetry DIR]";

fn summaries_json(run: &CatalogRun) -> String {
    serde_json::to_string(&run.per_swarm).expect("summaries serialize")
}

#[derive(Debug, Serialize)]
struct ThreadResult {
    threads: usize,
    wall_min_s: f64,
    wall_median_s: f64,
    /// wall_min(1 thread) / wall_min(this thread count).
    speedup: f64,
    /// Serialized per-swarm summaries identical to the 1-thread run.
    summaries_identical: bool,
    /// Every `catalog.*` registry counter identical to the 1-thread run
    /// (only checked when telemetry is on).
    counters_identical: Option<bool>,
}

#[derive(Debug, Serialize)]
struct Report {
    quick: bool,
    reps: usize,
    swarms: usize,
    months: u32,
    arrivals: u64,
    toggles: u64,
    events: u64,
    physical_cores: usize,
    thread_counts: Vec<usize>,
    results: Vec<ThreadResult>,
    /// Full mode: speedup at the largest thread count must be >= this.
    /// `None` when quick or when the machine has too few cores to show
    /// parallel speedup (see `speedup_bar_note`).
    min_speedup_at_max_threads: Option<f64>,
    speedup_bar_note: String,
    pass: bool,
}

fn timed_run(swarms: &[Swarm], cfg: &CatalogRunConfig, reps: usize) -> (CatalogRun, f64, f64) {
    let first = run_catalog(swarms, cfg);
    let mut samples = vec![first.wall.as_secs_f64()];
    for _ in 1..reps {
        samples.push(run_catalog(swarms, cfg).wall.as_secs_f64());
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (first, samples[0], samples[samples.len() / 2])
}

fn catalog_counters(snap: &swarm_obs::Snapshot) -> Vec<(String, u64)> {
    snap.counters
        .iter()
        .filter(|(k, _)| k.starts_with("catalog."))
        .map(|(k, &v)| (k.clone(), v))
        .collect()
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut reps = 0usize;
    let mut out: Option<String> = None;
    let mut telemetry: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(n) if n > 0 => reps = n,
                    _ => {
                        eprintln!("bad --reps `{v}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--telemetry" => match args.next() {
                Some(v) => telemetry = Some(std::path::PathBuf::from(v)),
                None => {
                    eprintln!("--telemetry needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if reps == 0 {
        reps = if quick { 1 } else { 3 };
    }

    // Full mode is the acceptance configuration: >10K swarms, 7 months,
    // on the order of a million served peer arrivals. Quick mode keeps
    // the same pipeline at CI-smoke size.
    let (scale, months) = if quick { (0.002, 3) } else { (0.01, 7) };
    let thread_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let swarms = generate_catalog(&CatalogConfig { scale, seed: 1001 });

    if telemetry.is_some() {
        swarm_obs::set_enabled(true);
    }

    let mut results: Vec<ThreadResult> = Vec::new();
    let mut baseline_summaries = String::new();
    let mut baseline_counters: Vec<(String, u64)> = Vec::new();
    let mut first_run: Option<CatalogRun> = None;
    for &threads in thread_counts {
        let cfg = CatalogRunConfig {
            catalog_seed: 1003,
            months,
            threads,
            start_at_generated_age: false,
        };
        let before = swarm_obs::snapshot();
        let (run, wall_min, wall_median) = timed_run(&swarms, &cfg, reps);
        let delta = swarm_obs::snapshot().delta_since(&before);

        if let Some(dir) = &telemetry {
            let tdir = dir.join(format!("t{threads}"));
            if let Err(e) = std::fs::create_dir_all(&tdir) {
                eprintln!("error: mkdir {}: {e}", tdir.display());
                return ExitCode::from(2);
            }
            let path = tdir.join("metrics.json");
            let json = serde_json::to_string_pretty(&delta).expect("snapshot serializes");
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error: write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            // The sharded run merged its weekly recorder windows into
            // the global "catalog" series; take (and thereby reset) it
            // per thread count so `repro diff --timeseries DIR/t1
            // DIR/t<n>` can re-verify shard invariance on the windowed
            // series too. Reps accumulate additively and every thread
            // count runs the same reps, so the files stay comparable.
            if let Some(rec) = swarm_obs::take_series("catalog") {
                let series: std::collections::BTreeMap<_, _> =
                    [("catalog".to_string(), rec)].into_iter().collect();
                let mut body = swarm_obs::header_line();
                body.push_str(&swarm_obs::series_to_jsonl(&series));
                let path = tdir.join("timeseries.jsonl");
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("error: write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }

        let summaries = summaries_json(&run);
        let counters = catalog_counters(&delta);
        let (summaries_identical, counters_identical) = if results.is_empty() {
            baseline_summaries = summaries;
            baseline_counters = counters;
            (true, telemetry.as_ref().map(|_| true))
        } else {
            (
                summaries == baseline_summaries,
                // Deltas sum over the same number of reps at every
                // thread count, so raw equality is the right check.
                telemetry.as_ref().map(|_| counters == baseline_counters),
            )
        };

        let base_wall = results.first().map(|r| r.wall_min_s).unwrap_or(wall_min);
        let r = ThreadResult {
            threads,
            wall_min_s: wall_min,
            wall_median_s: wall_median,
            speedup: base_wall / wall_min,
            summaries_identical,
            counters_identical,
        };
        eprintln!(
            "threads {:2}  wall {:8.3}s (median {:8.3}s)  speedup {:5.2}x  \
             summaries {}  counters {}",
            r.threads,
            r.wall_min_s,
            r.wall_median_s,
            r.speedup,
            if r.summaries_identical {
                "identical"
            } else {
                "DIVERGED"
            },
            match r.counters_identical {
                Some(true) => "identical",
                Some(false) => "DIVERGED",
                None => "(telemetry off)",
            },
        );
        if first_run.is_none() {
            first_run = Some(run);
        }
        results.push(r);
    }

    let run = first_run.expect("at least one thread count");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_threads = *thread_counts.last().unwrap();
    let (min_speedup, speedup_bar_note) = if quick {
        (None, "quick mode records the ratio only".to_string())
    } else if cores < max_threads {
        (
            None,
            format!(
                "waived: {cores} physical core(s) cannot exhibit \
                 {max_threads}-thread speedup; the 3x bar applies on \
                 >= {max_threads}-core machines"
            ),
        )
    } else {
        (Some(3.0), format!("enforced on {cores} cores"))
    };
    let scaling_ok = match min_speedup {
        Some(bar) => results.last().map(|r| r.speedup >= bar).unwrap_or(false),
        None => true,
    };
    let invariant = results
        .iter()
        .all(|r| r.summaries_identical && r.counters_identical.unwrap_or(true));
    if !invariant {
        eprintln!("shard-count invariance violated — FAIL");
    }
    if !scaling_ok {
        eprintln!(
            "speedup at {max_threads} threads below the {}x bar — FAIL",
            min_speedup.unwrap()
        );
    }
    let pass = invariant && scaling_ok;

    let report = Report {
        quick,
        reps,
        swarms: swarms.len(),
        months,
        arrivals: run.total_arrivals(),
        toggles: run.total_toggles(),
        events: run.per_swarm.iter().map(|s| s.events).sum(),
        physical_cores: cores,
        thread_counts: thread_counts.to_vec(),
        results,
        min_speedup_at_max_threads: min_speedup,
        speedup_bar_note,
        pass,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error: write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => println!("{json}"),
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
