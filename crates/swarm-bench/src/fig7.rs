//! E11 — Figure 7: typical arrival patterns of new and old swarms.

use crate::output::Report;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use swarm_measurement::popularity::{daily_cv, new_swarm_rate, old_swarm_rate, sample_trace};
use swarm_stats::ascii::{line_chart, Series};

/// Regenerate Figure 7.
pub fn run(_quick: bool) -> Report {
    let mut report = Report::new(
        "fig7",
        "Typical peer arrival patterns of short- and long-lived swarms (paper Figure 7)",
    );
    let mut rng = ChaCha8Rng::seed_from_u64(7001);
    let new = sample_trace(|t| new_swarm_rate(180.0, t), 180.0, 30, &mut rng);
    let old = sample_trace(|t| old_swarm_rate(35.0, t), 35.0, 30, &mut rng);

    let new_pts: Vec<(f64, f64)> = new.daily.iter().map(|&(d, c)| (d, c as f64)).collect();
    let old_pts: Vec<(f64, f64)> = old.daily.iter().map(|&(d, c)| (d, c as f64)).collect();
    report.block(line_chart(
        "arrivals/day vs day",
        &[
            Series::new("new swarm (first month)", new_pts.clone()),
            Series::new("old swarm (2 years after creation)", old_pts.clone()),
        ],
        64,
        16,
    ));
    let (cv_new, cv_old) = (daily_cv(&new), daily_cv(&old));
    report.line(format!(
        "coefficient of variation of daily arrivals: new {cv_new:.2}, old {cv_old:.2} \
         (paper: old swarms show much less variation)"
    ));
    report.set_data(json!({
        "new": new_pts, "old": old_pts,
        "cv_new": cv_new, "cv_old": cv_old,
        "total_new": new.total, "total_old": old.total,
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_new_swarms_vary_more() {
        let r = run(true);
        let cv_new = r.data["cv_new"].as_f64().unwrap();
        let cv_old = r.data["cv_old"].as_f64().unwrap();
        assert!(cv_new > 2.0 * cv_old, "cv_new {cv_new} vs cv_old {cv_old}");
    }

    #[test]
    fn fig7_new_swarm_wave_decays() {
        let r = run(true);
        let new: Vec<(f64, f64)> = serde_json::from_value(r.data["new"].clone()).unwrap();
        let first_week: f64 = new[..7].iter().map(|p| p.1).sum();
        let last_week: f64 = new[23..].iter().map(|p| p.1).sum();
        assert!(first_week > 3.0 * last_week.max(1.0));
    }
}
