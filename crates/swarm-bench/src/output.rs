//! Experiment report plumbing: every reproduction produces a [`Report`]
//! with human-readable text (including ASCII renderings of the figures)
//! and machine-readable JSON, written under `repro_out/`.

use serde_json::Value;
use std::fmt::Write as _;
use std::path::Path;

/// One experiment's output.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig4`, `table-bundling`, `ablation-zipf`).
    pub id: String,
    /// Human-readable title (paper artifact it regenerates).
    pub title: String,
    /// Rendered text (tables, ASCII charts, commentary).
    pub text: String,
    /// Structured results for downstream tooling and tests.
    pub data: Value,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str) -> Self {
        let mut text = String::new();
        let _ = writeln!(text, "==== {id}: {title} ====");
        Report {
            id: id.to_string(),
            title: title.to_string(),
            text,
            data: Value::Null,
        }
    }

    /// Append a text line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Append a pre-rendered block (charts).
    pub fn block(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        if !s.as_ref().ends_with('\n') {
            self.text.push('\n');
        }
    }

    /// Attach the structured payload.
    pub fn set_data(&mut self, data: Value) {
        self.data = data;
    }

    /// The artifact files this report materializes, as
    /// `(file name, contents)` pairs: `<id>.txt` (rendered text) and
    /// `<id>.json` (structured data). Single source of truth for both
    /// [`Report::save`] and the swarm-lab job registry ([`crate::lab`]).
    pub fn artifacts(&self) -> Vec<(String, String)> {
        let json = serde_json::to_string_pretty(&self.data).expect("serializable data");
        vec![
            (format!("{}.txt", self.id), self.text.clone()),
            (format!("{}.json", self.id), json),
        ]
    }

    /// The artifact file names for experiment `id`, without running it
    /// (what the job registry declares up front).
    pub fn artifact_names(id: &str) -> Vec<String> {
        vec![format!("{id}.txt"), format!("{id}.json")]
    }

    /// Write `<id>.txt` and `<id>.json` into `dir` (created if missing).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, contents) in self.artifacts() {
            std::fs::write(dir.join(name), contents)?;
        }
        Ok(())
    }
}

/// Format a two-column numeric table.
pub fn table2(header: (&str, &str), rows: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>16} | {}", header.0, header.1);
    let _ = writeln!(out, "{:->16}-+-{:-<24}", "", "");
    for (a, b) in rows {
        let _ = writeln!(out, "{a:>16} | {b}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_text() {
        let mut r = Report::new("x", "t");
        r.line("hello");
        r.block("block\n");
        assert!(r.text.contains("==== x: t ===="));
        assert!(r.text.contains("hello\n"));
        assert!(r.text.contains("block\n"));
    }

    #[test]
    fn report_saves_files() {
        let dir = std::env::temp_dir().join("swarmsys-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = Report::new("demo", "demo");
        r.set_data(serde_json::json!({"k": 1}));
        r.save(&dir).unwrap();
        assert!(dir.join("demo.txt").exists());
        let json: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("demo.json")).unwrap()).unwrap();
        assert_eq!(json["k"], 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifacts_match_declared_names() {
        let mut r = Report::new("demo", "demo");
        r.set_data(serde_json::json!({"k": 1}));
        let produced: Vec<String> = r.artifacts().into_iter().map(|(n, _)| n).collect();
        assert_eq!(produced, Report::artifact_names("demo"));
    }

    #[test]
    fn table_renders_rows() {
        let t = table2(
            ("K", "E[T]"),
            &[("1".into(), "100".into()), ("2".into(), "90".into())],
        );
        assert!(t.contains('K'));
        assert!(t.lines().count() == 4);
    }
}
