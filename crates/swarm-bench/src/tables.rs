//! E2/E3 — the §2.3 tables: extent of bundling, book availability
//! contrast, and the "Friends" case study.

use crate::output::{table2, Report};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use swarm_catalog::{book_stats_live, friends_case_live, run_catalog, CatalogRunConfig};
use swarm_measurement::{
    book_stats, bundling_extent, generate_catalog, show_case_study, CatalogConfig, Category,
};

/// E2 — §2.3.1: extent of bundling per category.
pub fn bundling_table(quick: bool) -> Report {
    let mut report = Report::new("table-bundling", "Extent of bundling (paper §2.3.1)");
    let scale = if quick { 0.005 } else { 0.02 };
    let catalog = generate_catalog(&CatalogConfig { scale, seed: 2001 });

    let mut rows = Vec::new();
    let mut data = Vec::new();
    // Paper reference fractions for the three classified categories.
    let paper = [
        (Category::Music, 193_491.0 / 267_117.0),
        (Category::Tv, 25_990.0 / 164_930.0),
        (Category::Books, 7_111.0 / 66_387.0),
    ];
    for (cat, paper_frac) in paper {
        let ext = bundling_extent(&catalog, cat);
        rows.push((
            format!("{cat:?}"),
            format!(
                "{}/{} bundles ({:.1}%; paper {:.1}%){}",
                ext.bundles,
                ext.total,
                ext.bundle_fraction() * 100.0,
                paper_frac * 100.0,
                if cat == Category::Books {
                    format!(", {} collections", ext.collections)
                } else {
                    String::new()
                }
            ),
        ));
        data.push(json!({
            "category": format!("{cat:?}"),
            "total": ext.total,
            "bundles": ext.bundles,
            "collections": ext.collections,
            "fraction": ext.bundle_fraction(),
            "paper_fraction": paper_frac,
        }));
    }
    report.block(table2(("category", "bundling"), &rows));
    report.set_data(json!({ "categories": data, "catalog_size": catalog.len() }));
    report
}

/// E3a — §2.3.2: book swarms vs collections.
pub fn books_table(quick: bool) -> Report {
    let mut report = Report::new(
        "table-books",
        "Bundled content is more available: books (paper §2.3.2)",
    );
    let scale = if quick { 0.01 } else { 0.04 };
    let catalog = generate_catalog(&CatalogConfig { scale, seed: 2003 });
    let mut rng = ChaCha8Rng::seed_from_u64(2004);
    let stats = book_stats(&catalog, &mut rng);

    // Live contrast: run the catalog through the sharded runtime as a
    // snapshot continuation and measure seed presence and downloads
    // instead of sampling the stationary law.
    let live_run = run_catalog(
        &catalog,
        &CatalogRunConfig {
            catalog_seed: 2006,
            months: 7,
            threads: crate::catalog_live::worker_threads(),
            start_at_generated_age: true,
        },
    );
    let live = book_stats_live(&catalog, &live_run);

    report.block(table2(
        ("metric", "value (paper)"),
        &[
            (
                "no seed, all".into(),
                format!("{:.0}% (62%)", stats.unavailable_all * 100.0),
            ),
            (
                "no seed, colls".into(),
                format!("{:.0}% (36%)", stats.unavailable_collections * 100.0),
            ),
            (
                "effective".into(),
                format!(
                    "{:.0}% (25%, after super-collection folding)",
                    stats.unavailable_collections_effective * 100.0
                ),
            ),
            (
                "downloads".into(),
                format!(
                    "typical {:.0} vs collections {:.0} (paper 2,578 vs 4,216)",
                    stats.downloads_typical, stats.downloads_collections
                ),
            ),
            (
                "live: no seed".into(),
                format!(
                    "all {:.0}%, colls {:.0}%, effective {:.0}%",
                    live.unavailable_all * 100.0,
                    live.unavailable_collections * 100.0,
                    live.unavailable_collections_effective * 100.0
                ),
            ),
            (
                "live: downloads".into(),
                format!(
                    "typical {:.0} vs collections {:.0} (measured)",
                    live.downloads_typical, live.downloads_collections
                ),
            ),
        ],
    ));
    let mut data = serde_json::to_value(stats).expect("serializable");
    if let serde_json::Value::Object(map) = &mut data {
        map.insert(
            "live".into(),
            serde_json::to_value(live).expect("serializable"),
        );
    }
    report.set_data(data);
    report
}

/// E3b — §2.3.2: the "Friends" case study.
pub fn friends_table(_quick: bool) -> Report {
    let mut report = Report::new(
        "table-friends",
        "Bundled content is more available: the \"Friends\" swarms (paper §2.3.2)",
    );
    let mut rng = ChaCha8Rng::seed_from_u64(2005);
    // Paper: 52 swarms, 28 bundles (21 + 7); 23 available of which 21
    // bundles. Bundle share 28/52.
    let s = show_case_study(52, 28.0 / 52.0, &mut rng);
    // The same case study with the snapshot simulated by the catalog
    // runtime instead of sampled from the stationary law.
    let live = friends_case_live(52, 28.0 / 52.0, 2005, crate::catalog_live::worker_threads());
    report.block(table2(
        ("metric", "value (paper)"),
        &[
            ("total swarms".into(), format!("{} (52)", s.total)),
            ("available".into(), format!("{} (23)", s.available)),
            (
                "avail. bundles".into(),
                format!("{} (21)", s.available_bundles),
            ),
            (
                "unavail. bundles".into(),
                format!("{} (7)", s.unavailable_bundles),
            ),
            (
                "live snapshot".into(),
                format!(
                    "{} available ({} bundles), {} unavailable bundles",
                    live.available, live.available_bundles, live.unavailable_bundles
                ),
            ),
        ],
    ));
    let mut data = serde_json::to_value(s).expect("serializable");
    if let serde_json::Value::Object(map) = &mut data {
        map.insert(
            "live".into(),
            serde_json::to_value(live).expect("serializable"),
        );
    }
    report.set_data(data);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundling_fractions_close_to_paper() {
        let r = bundling_table(true);
        for cat in r.data["categories"].as_array().unwrap() {
            let got = cat["fraction"].as_f64().unwrap();
            let want = cat["paper_fraction"].as_f64().unwrap();
            assert!(
                (got - want).abs() < 0.06,
                "{}: {got} vs paper {want}",
                cat["category"]
            );
        }
    }

    #[test]
    fn books_contrast_direction() {
        let r = books_table(true);
        let all = r.data["unavailable_all"].as_f64().unwrap();
        let coll = r.data["unavailable_collections"].as_f64().unwrap();
        let eff = r.data["unavailable_collections_effective"]
            .as_f64()
            .unwrap();
        assert!(all > coll, "collections more available: {all} vs {coll}");
        assert!(eff <= coll);
        assert!(
            r.data["downloads_collections"].as_f64().unwrap()
                > r.data["downloads_typical"].as_f64().unwrap()
        );
    }

    #[test]
    fn friends_bundles_dominate_available() {
        let r = friends_table(true);
        let available = r.data["available"].as_u64().unwrap();
        let avail_bundles = r.data["available_bundles"].as_u64().unwrap();
        let total = r.data["total"].as_u64().unwrap();
        let unavail_bundles = r.data["unavailable_bundles"].as_u64().unwrap();
        assert_eq!(total, 52);
        // Bundle share among available must exceed share among unavailable.
        let unavailable = total - available;
        let f_avail = avail_bundles as f64 / available.max(1) as f64;
        let f_unavail = unavail_bundles as f64 / unavailable.max(1) as f64;
        assert!(
            f_avail > f_unavail,
            "available {f_avail} vs unavailable {f_unavail}"
        );
    }
}
