//! E5 — Figure 3: when can bundling reduce download time?
//!
//! The paper evaluates eqs. (9) and (11) over the bundle size K for eleven
//! publisher scarcities 1/R ∈ {100, …, 1100}: the optimum is K = 3 for
//! 1/R ∈ [500, 1100] and K = 1 for the remaining four, and the curves
//! rise-fall-rise.
//!
//! The figure legend's parameters are not in the paper text; ours were
//! calibrated by grid search to reproduce the reported optimal-K pattern
//! exactly: λ = 0.003/s, s/μ = 170 s, u = U = 105 s (see EXPERIMENTS.md).

use crate::output::Report;
use serde_json::json;
use swarm_core::bundling::{optimal_bundle_size, sweep};
use swarm_core::params::{PublisherScaling, SwarmParams};
use swarm_stats::ascii::{line_chart, Series};

/// Calibrated Figure 3 base parameters (1/R varies per curve).
pub fn fig3_params(inv_r: f64) -> SwarmParams {
    SwarmParams {
        lambda: 0.003,
        size: 170.0,
        mu: 1.0,
        r: 1.0 / inv_r,
        u: 105.0,
    }
}

/// Regenerate Figure 3.
pub fn run(_quick: bool) -> Report {
    let mut report = Report::new("fig3", "Bundles may reduce download time (paper Figure 3)");
    let ks: Vec<u32> = (1..=10).collect();
    let mut series = Vec::new();
    let mut data = Vec::new();
    for i in 1..=11u32 {
        let inv_r = 100.0 * i as f64;
        let p = fig3_params(inv_r);
        let pts = sweep(&p, PublisherScaling::Fixed, &ks);
        let (k_opt, t_opt) = optimal_bundle_size(&p, PublisherScaling::Fixed, 10);
        let curve: Vec<(f64, f64)> = pts.iter().map(|s| (s.k as f64, s.download_time)).collect();
        if i % 2 == 1 {
            series.push(Series::new(format!("1/R={inv_r:.0}"), curve.clone()));
        }
        data.push(json!({
            "inv_r": inv_r,
            "curve": curve,
            "k_opt": k_opt,
            "t_opt": t_opt,
        }));
        report.line(format!(
            "1/R = {inv_r:>5.0}: optimal K = {k_opt}, E[T] = {t_opt:.0} s (K=1 gives {:.0} s)",
            pts[0].download_time
        ));
    }
    report.block(line_chart(
        "E[T] (s) vs bundle size K (every other curve shown)",
        &series,
        64,
        18,
    ));
    report.line("paper: optimal K = 3 for 1/R in [500, 1100]; K = 1 otherwise.");
    report.set_data(json!({ "curves": data, "params": "lambda=0.003, s/mu=170, u=U=105" }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_optimal_k_pattern_matches_paper() {
        let r = run(true);
        for c in r.data["curves"].as_array().unwrap() {
            let inv_r = c["inv_r"].as_f64().unwrap();
            let k_opt = c["k_opt"].as_u64().unwrap();
            if inv_r >= 500.0 {
                assert_eq!(k_opt, 3, "1/R={inv_r}");
            } else {
                assert_eq!(k_opt, 1, "1/R={inv_r}");
            }
        }
    }

    #[test]
    fn fig3_curves_rise_fall_rise_for_rare_publishers() {
        // Paper: "as K increases the mean download time first increases,
        // then decreases and finally increases again." The initial rise
        // shows on the curves near the bundling crossover (1/R = 500);
        // for rarer publishers K = 2 already beats K = 1.
        let r = run(true);
        let c = &r.data["curves"].as_array().unwrap()[4];
        assert_eq!(c["inv_r"].as_f64().unwrap(), 500.0);
        let curve: Vec<(f64, f64)> = serde_json::from_value(c["curve"].clone()).unwrap();
        let t = |k: usize| curve[k - 1].1;
        assert!(t(2) > t(1), "initial rise: K=2 {} vs K=1 {}", t(2), t(1));
        assert!(t(3) < t(2), "fall to the optimum");
        assert!(t(10) > t(3), "final rise");
    }

    #[test]
    fn fig3_benefit_grows_as_r_shrinks() {
        let r = run(true);
        let curves = r.data["curves"].as_array().unwrap();
        let gain = |c: &serde_json::Value| {
            let curve: Vec<(f64, f64)> = serde_json::from_value(c["curve"].clone()).unwrap();
            let t1 = curve[0].1;
            let topt = c["t_opt"].as_f64().unwrap();
            (t1 - topt) / t1
        };
        let g500 = gain(&curves[4]);
        let g1100 = gain(&curves[10]);
        assert!(g1100 >= g500, "gain must grow with 1/R: {g500} vs {g1100}");
    }
}
