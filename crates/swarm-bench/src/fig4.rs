//! E6 — Figure 4 and the §4.2 B(m) table: availability of seedless swarms.
//!
//! A publisher seeds the swarm until the first peer completes, then never
//! returns. For small bundles only a handful of additional peers finish
//! before pieces go extinct; for large bundles the swarm becomes
//! self-sustaining and completions keep accumulating linearly. The §4.2
//! companion table evaluates the model's expected residual busy period
//! B(m) (eq. 13) with m = 9 for K = 1..8.

use crate::output::{table2, Report};
use serde_json::json;
use swarm_bt::{run as bt_run, BtConfig};
use swarm_core::params::{PublisherScaling, SwarmParams};
use swarm_core::threshold;
use swarm_stats::ascii::{line_chart, Series};

/// §4.2 model parameters: λ = 1/150 peers/s, s = 4 MB, μ = 33 kB/s.
pub fn fig4_params() -> SwarmParams {
    SwarmParams {
        lambda: 1.0 / 150.0,
        size: 4_000.0,
        mu: 33.0,
        r: 1.0 / 900.0, // irrelevant to B(m); required positive
        u: 300.0,
    }
}

/// Regenerate Figure 4 (block-level simulation).
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "fig4",
        "Availability of seedless swarms vs bundle size (paper Figure 4)",
    );
    let ks: [u32; 6] = [1, 2, 4, 6, 8, 10];
    let reps = if quick { 2 } else { 6 };
    let mut series = Vec::new();
    let mut data = Vec::new();
    for &k in &ks {
        // Average the cumulative-completions curve over replications.
        let mut avg_curve = [0.0f64; 16];
        let mut last_avail = 0.0;
        for rep in 0..reps {
            let cfg = BtConfig {
                record_timeline: false,
                ..BtConfig::paper_section_4_2(k, 4000 + rep)
            };
            let r = bt_run(&cfg);
            for (i, slot) in avg_curve.iter_mut().enumerate() {
                let t = (i as u64 + 1) * 100; // 100 s bins up to 1500 s
                *slot += r.completions_between(0, t.min(1_500)) as f64 / reps as f64;
            }
            last_avail += r.last_available_tick.unwrap_or(0) as f64 / reps as f64;
        }
        let curve: Vec<(f64, f64)> = (0..15)
            .map(|i| (((i + 1) * 100) as f64, avg_curve[i]))
            .collect();
        series.push(Series::new(format!("K={k}"), curve.clone()));
        report.line(format!(
            "K={k:>2}: {:.1} peers served by t=1500 s; last fully-available tick ≈ {last_avail:.0}",
            curve.last().unwrap().1
        ));
        data.push(json!({ "k": k, "curve": curve, "last_available": last_avail }));
    }
    report.block(line_chart(
        "peers served (cumulative) vs time (s), publisher leaves after first completion",
        &series,
        64,
        18,
    ));
    report.line("paper: K=1,2,4 stall soon after the publisher leaves; K=6,8,10 grow linearly.");
    report.set_data(json!({ "curves": data }));
    report
}

/// Regenerate the §4.2 B(m) table (model, eq. 13).
pub fn bm_table(_quick: bool) -> Report {
    let mut report = Report::new(
        "table-bm",
        "Residual busy periods B(m), m = 9 (paper §4.2 values)",
    );
    let paper = [0.0, 0.0, 47.0, 569.0, 2_816.0, 8_835.0, 256_446.0, 75_276.0];
    let base = fig4_params();
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for k in 1..=8u32 {
        let b = base.bundle(k, PublisherScaling::Fixed);
        let bm = threshold::residual_busy_period(&b, 9);
        rows.push((
            format!("K={k}"),
            format!(
                "B(9) = {:>12.0} s   (paper: {:>7.0})",
                bm,
                paper[k as usize - 1]
            ),
        ));
        values.push(bm);
    }
    report.block(table2(("bundle", "residual busy period"), &rows));
    report.line(
        "note: the paper's K=7 value (256,446) exceeds its K=8 value (75,276); \
         eq. (13) is monotone in K, so we report the monotone series and flag \
         the paper's non-monotonicity as a likely numerical artifact.",
    );
    report.set_data(json!({ "m": 9, "bm": values, "paper": paper }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_large_bundles_serve_more_late_peers() {
        let r = run(true);
        let curves = r.data["curves"].as_array().unwrap();
        let total = |idx: usize| -> f64 {
            let c: Vec<(f64, f64)> = serde_json::from_value(curves[idx]["curve"].clone()).unwrap();
            c.last().unwrap().1
        };
        // K=8 (index 4) must both serve more peers and stay available
        // longer than K=1 (index 0).
        assert!(total(4) > total(0), "K=8 {} vs K=1 {}", total(4), total(0));
        let la = |idx: usize| curves[idx]["last_available"].as_f64().unwrap();
        assert!(
            la(4) > la(0) + 300.0,
            "availability: {} vs {}",
            la(4),
            la(0)
        );
    }

    #[test]
    fn bm_table_matches_paper_transition() {
        let r = bm_table(true);
        let bm: Vec<f64> = serde_json::from_value(r.data["bm"].clone()).unwrap();
        // Paper: B(9) ≈ 0 for K=1,2; crosses the 1500 s experiment horizon
        // by K ≈ 5-6 (self-sustaining swarms).
        assert!(
            bm[0] < 1.0 && bm[1] < 5.0,
            "K=1,2 must be ~0: {:?}",
            &bm[..2]
        );
        assert!(bm[5] > 1_500.0, "K=6 must exceed the horizon: {}", bm[5]);
        // Monotone in K (the paper's non-monotone K=7/8 values are flagged
        // as an artifact).
        assert!(bm.windows(2).all(|w| w[0] <= w[1]));
    }
}
