//! E1′ — `catalog-live`: the whole generated catalog ticked through the
//! sharded multi-swarm runtime.
//!
//! Where `fig1` *samples* availability with hourly monitoring agents,
//! this experiment runs every swarm of the catalog through
//! `swarm-catalog`'s work-stealing shard pool and reports measured
//! aggregates: seed-time CDF calibration points, downloads served,
//! seed-process transitions. Every number in the JSON payload is
//! deterministic in the catalog seed alone — shard count and steal
//! order provably cannot move it — so the quick-mode run doubles as a
//! cross-thread-count regression surface for the `repro diff` gate.

use crate::output::Report;
use serde_json::json;
use swarm_catalog::{availability_study_live, run_catalog, CatalogRunConfig};
use swarm_measurement::{generate_catalog, CatalogConfig};

/// Worker threads for the catalog experiments: every available core,
/// bounded so a huge machine doesn't oversubscribe the lab scheduler's
/// own workers.
pub fn worker_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Run the live catalog experiment. `quick` shrinks the catalog.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "catalog-live",
        "Live sharded catalog runtime (measurement study, E1-E3 substrate)",
    );
    let scale = if quick { 0.002 } else { 0.01 };
    let months = 7;
    let catalog = generate_catalog(&CatalogConfig { scale, seed: 1001 });
    let threads = worker_threads();
    let run = run_catalog(
        &catalog,
        &CatalogRunConfig {
            catalog_seed: 1003,
            months,
            threads,
            start_at_generated_age: false,
        },
    );
    let study = availability_study_live(&run);

    let always = study.always_available_first_month();
    let mostly_off = study.mostly_unavailable_whole_trace(0.2);
    report.line(format!(
        "catalog: {} swarms | horizon: {} months | threads requested: {}",
        catalog.len(),
        months,
        threads
    ));
    report.line(format!(
        "downloads served: {} | lingered as seeds: {} | seed-process toggles: {}",
        run.total_arrivals(),
        run.per_swarm.iter().map(|s| s.lingered).sum::<u64>(),
        run.total_toggles()
    ));
    report.line(format!(
        "always available in first month: {:.1}% (paper: <35%) | \
         unavailable >=80% of whole trace: {:.1}% (paper: ~80%)",
        always * 100.0,
        mostly_off * 100.0
    ));
    report.line(format!(
        "wall: {:.0} ms (shard-count invariant results)",
        run.wall.as_secs_f64() * 1000.0
    ));

    report.set_data(json!({
        "swarms": catalog.len(),
        "months": months,
        "arrivals": run.total_arrivals(),
        "lingered": run.per_swarm.iter().map(|s| s.lingered).sum::<u64>(),
        "toggles": run.total_toggles(),
        "events": run.per_swarm.iter().map(|s| s.events).sum::<u64>(),
        "final_on": run.seeded_flags().iter().filter(|&&b| b).count(),
        "always_available_first_month": always,
        "mostly_unavailable_whole_trace": mostly_off,
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_live_calibrates_like_the_sampled_study() {
        let r = run(true);
        let always = r.data["always_available_first_month"].as_f64().unwrap();
        let mostly = r.data["mostly_unavailable_whole_trace"].as_f64().unwrap();
        assert!(always < 0.45, "always available {always}");
        assert!(mostly > 0.5, "mostly unavailable {mostly}");
        assert!(r.data["arrivals"].as_u64().unwrap() > 0);
        assert!(r.data["toggles"].as_u64().unwrap() > 0);
    }
}
