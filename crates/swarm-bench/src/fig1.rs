//! E1 — Figure 1: CDF of seed availability across the monitored swarms.
//!
//! Two pipelines produce the figure side by side:
//!
//! * **sampled** — the original hourly monitoring agents
//!   (`swarm_measurement::availability_study`), one shared RNG, serial;
//! * **live** — the sharded catalog runtime (`swarm-catalog`) ticking
//!   every swarm event-driven on the work-stealing shard pool; its
//!   numbers are bit-identical at any thread count.

use crate::output::Report;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::json;
use swarm_catalog::{availability_study_live, run_catalog, CatalogRunConfig};
use swarm_measurement::{availability_study, generate_catalog, CatalogConfig};
use swarm_stats::ascii::{line_chart, Series};

/// Regenerate Figure 1. `quick` shrinks the catalog.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new("fig1", "CDF of seed availability (paper Figure 1)");
    let scale = if quick { 0.002 } else { 0.01 };
    let months = 7;
    let catalog = generate_catalog(&CatalogConfig { scale, seed: 1001 });
    let mut rng = ChaCha8Rng::seed_from_u64(1002);
    let study = availability_study(&catalog, months, &mut rng);

    // The same catalog through the live sharded runtime.
    let live_run = run_catalog(
        &catalog,
        &CatalogRunConfig {
            catalog_seed: 1003,
            months,
            threads: crate::catalog_live::worker_threads(),
            start_at_generated_age: false,
        },
    );
    let live = availability_study_live(&live_run);

    let first: Vec<(f64, f64)> = study.first_month.curve(0.0, 1.0, 41);
    let whole: Vec<(f64, f64)> = study.whole_trace.curve(0.0, 1.0, 41);
    report.block(line_chart(
        "CDF of per-swarm seed availability (x: availability, y: fraction of swarms)",
        &[
            Series::new("first month after creation", first.clone()),
            Series::new(format!("entire {months}-month trace"), whole.clone()),
        ],
        64,
        18,
    ));
    let always = study.always_available_first_month();
    let mostly_off = study.mostly_unavailable_whole_trace(0.2);
    let live_always = live.always_available_first_month();
    let live_mostly_off = live.mostly_unavailable_whole_trace(0.2);
    report.line(format!(
        "swarms monitored: {} | always available in first month: {:.1}% (paper: <35%)",
        catalog.len(),
        always * 100.0
    ));
    report.line(format!(
        "unavailable >=80% of the whole trace: {:.1}% (paper: ~80%)",
        mostly_off * 100.0
    ));
    report.line(format!(
        "live catalog runtime: always available {:.1}% | mostly unavailable {:.1}% \
         | downloads served {}",
        live_always * 100.0,
        live_mostly_off * 100.0,
        live_run.total_arrivals()
    ));

    report.set_data(json!({
        "swarms": catalog.len(),
        "months": months,
        "always_available_first_month": always,
        "mostly_unavailable_whole_trace": mostly_off,
        "first_month_cdf": first,
        "whole_trace_cdf": whole,
        "live": {
            "always_available_first_month": live_always,
            "mostly_unavailable_whole_trace": live_mostly_off,
            "first_month_cdf": live.first_month.curve(0.0, 1.0, 41),
            "whole_trace_cdf": live.whole_trace.curve(0.0, 1.0, 41),
            "arrivals": live_run.total_arrivals(),
            "toggles": live_run.total_toggles(),
        },
        "paper": {
            "always_available_first_month": "< 0.35",
            "mostly_unavailable_whole_trace": "~ 0.80",
        },
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_shape() {
        let r = run(true);
        let always = r.data["always_available_first_month"].as_f64().unwrap();
        let mostly = r.data["mostly_unavailable_whole_trace"].as_f64().unwrap();
        assert!(always < 0.45, "always available {always}");
        assert!(mostly > 0.5, "mostly unavailable {mostly}");
        assert!(r.text.contains("CDF"));

        // The live runtime must agree with the sampled pipeline on the
        // paper's calibration claims.
        let live_always = r.data["live"]["always_available_first_month"]
            .as_f64()
            .unwrap();
        let live_mostly = r.data["live"]["mostly_unavailable_whole_trace"]
            .as_f64()
            .unwrap();
        assert!(live_always < 0.45, "live always available {live_always}");
        assert!(live_mostly > 0.5, "live mostly unavailable {live_mostly}");
        assert!((live_always - always).abs() < 0.15, "pipelines disagree");
        assert!(r.data["live"]["arrivals"].as_u64().unwrap() > 0);
    }
}
