//! E12 — `net-live`: the sim-vs-live equivalence experiment.
//!
//! Runs the canonical scripted scenarios twice each: once through the
//! `swarm-bt` tick simulator and once through the `swarm-net` live
//! networked engine on its deterministic loopback transport. The
//! scenarios are constructed so the comparable counters — ticks,
//! arrivals, completions, availability transitions — are *exactly*
//! equal between the two engines (see `swarm-net`'s scenario module for
//! the construction), and this experiment is where that claim meets the
//! telemetry pipeline: under `repro net-live --telemetry`, the sim's
//! `bt.*` counters and the live engine's `net.*` counters land in the
//! same run-level `metrics.json`, and `repro diff --sim-vs-live` gates
//! their equality in CI.
//!
//! `quick` hosts every live endpoint on one thread; the full run gives
//! each peer its own OS thread — by the engine's host-mode invariance
//! the numbers must not move, so the mode is reported but not compared.

use crate::output::Report;
use serde_json::json;
use swarm_net::{run_live, scenarios, HostMode};

/// The counter stems the equivalence construction pins exactly; kept in
/// sync with `swarm_trace::diff::SIM_VS_LIVE_STEMS` by the test below.
const STEMS: [&str; 4] = [
    "ticks",
    "arrivals",
    "completions",
    "availability.transitions",
];

/// Run the sim-vs-live comparison. `quick` picks the single-threaded
/// live host; the full run uses a thread per peer.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "net-live",
        "Sim-vs-live equivalence (swarm-bt vs swarm-net loopback)",
    );
    let mode = if quick {
        HostMode::SingleThread
    } else {
        HostMode::ThreadPerPeer
    };
    report.line(format!(
        "live host mode: {}",
        match mode {
            HostMode::SingleThread => "single thread",
            HostMode::ThreadPerPeer => "thread per peer",
        }
    ));

    let mut rows = Vec::new();
    let mut all_equal = true;
    for (name, cfg) in scenarios::all(42) {
        let sim = swarm_bt::run(&cfg);
        let live = run_live(&cfg, mode);

        // The live engine reports ticks directly; the sim's drain-free
        // scripted runs are exactly the horizon by construction.
        let sim_counts = [
            cfg.horizon,
            sim.arrivals,
            sim.completions,
            availability_transitions(&sim, cfg.horizon),
        ];
        let live_counts = [
            live.ticks,
            live.arrivals,
            live.completions,
            live.availability_transitions,
        ];
        let equal = sim_counts == live_counts && sim.availability == live.availability;
        all_equal &= equal;

        report.line(format!(
            "{name}: K={} peers={} horizon={} | completions sim={} live={} | \
             availability sim={:.4} live={:.4} | transitions sim={} live={} | {}",
            cfg.file_size / cfg.piece_size,
            cfg.scripted_arrivals.as_ref().map_or(0, Vec::len),
            cfg.horizon,
            sim.completions,
            live.completions,
            sim.availability,
            live.availability,
            sim_counts[3],
            live.availability_transitions,
            if equal { "EXACT MATCH" } else { "MISMATCH" }
        ));

        rows.push(json!({
            "scenario": name,
            "stems": STEMS,
            "sim": sim_counts,
            "live": live_counts,
            "sim_availability": sim.availability,
            "live_availability": live.availability,
            "live_bytes_moved": live.bytes_moved,
            "live_messages": live.messages,
            "exact_match": equal,
        }));
    }
    report.line(if all_equal {
        "sim and live agree exactly on every comparable counter".to_string()
    } else {
        "MISMATCH: engines disagree — the repro diff --sim-vs-live gate will fail".to_string()
    });

    report.set_data(json!({
        "thread_per_peer": !quick,
        "scenarios": rows,
        "all_exact": all_equal,
    }));
    report
}

/// Availability transitions of a sim run, recovered from its recorded
/// publisher intervals: the scenarios put every completion inside the
/// first on-phase, so availability equals the publisher square wave and
/// each interval edge strictly inside the horizon is one transition.
/// (The engine counts the same quantity on the
/// `bt.availability.transitions` counter, but counters are global and
/// this experiment needs the per-run number.)
fn availability_transitions(sim: &swarm_bt::BtResult, horizon: u64) -> u64 {
    let mut edges: Vec<(u64, bool)> = Vec::new();
    for &(on, off) in &sim.publisher_intervals {
        edges.push((on, true));
        edges.push((off, false));
    }
    edges.sort();
    let mut flips = 0u64;
    let mut last = true; // runs start available (publisher on at tick 0)
    for (tick, state) in edges {
        if tick == 0 {
            last = state;
            continue;
        }
        // An interval closing at the horizon is the run ending, not the
        // publisher leaving; the engine never saw that tick.
        if tick >= horizon {
            continue;
        }
        if state != last {
            flips += 1;
            last = state;
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stems_match_the_diff_gate() {
        assert_eq!(STEMS, swarm_trace::diff::SIM_VS_LIVE_STEMS);
    }

    #[test]
    fn quick_run_agrees_exactly() {
        let r = run(true);
        assert!(r.data["all_exact"].as_bool().unwrap(), "{}", r.text);
        let rows = r.data["scenarios"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert_eq!(row["sim"], row["live"], "{row}");
            assert_eq!(row["sim_availability"], row["live_availability"]);
        }
    }
}
