//! E4 — Figure 2: the busy/idle period illustration.
//!
//! One swarm with an intermittent publisher and coverage threshold 3,
//! rendered as the paper's timeline: thick publisher lines, thin peer
//! lines, dotted waiting intervals.

use crate::output::Report;
use serde_json::json;
use swarm_sim::{run, Patience, PublisherProcess, ServiceModel, SimConfig};

/// Regenerate Figure 2.
pub fn run_fig(_quick: bool) -> Report {
    let mut report = Report::new("fig2", "Busy and idle periods (paper Figure 2)");
    // A small, legible scenario: one swarm, threshold 3, a publisher that
    // comes and goes. Seeds were chosen so the rendered window shows the
    // full story: a publisher-initiated busy period, a phase sustained by
    // peers alone, an idle period with waiting peers, and a revival.
    let cfg = SimConfig {
        lambda: 1.0 / 25.0,
        service: ServiceModel::Exponential { mean: 120.0 },
        publisher: PublisherProcess::Poisson {
            rate: 1.0 / 700.0,
            residence: 150.0,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: 3,
        horizon: 2_500.0,
        warmup: 0.0,
        seed: 4242,
        record_timeline: true,
    };
    let result = run(&cfg);
    let rows = result.timeline.rows();
    report.block(swarm_stats::ascii::timeline(
        "thick (=) publisher, thin (-) active peer, dotted (.) waiting peer",
        &rows,
        0.0,
        cfg.horizon,
        84,
    ));
    report.line(format!(
        "busy periods completed: {} | availability: {:.2} | completions: {}",
        result.busy_periods.len(),
        result.availability,
        result.completions
    ));
    report.set_data(json!({
        "entities": result.timeline.entity_count(),
        "busy_periods": result.busy_periods.values(),
        "availability": result.availability,
        "completions": result.completions,
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_timeline_shows_all_three_states() {
        let r = run_fig(true);
        assert!(r.text.contains('='), "publisher segments missing");
        assert!(r.text.contains('-'), "peer segments missing");
        assert!(r.text.contains('.'), "waiting segments missing");
        assert!(r.data["entities"].as_u64().unwrap() > 3);
    }
}
