//! E7 — Figure 5: peer arrival/departure timelines under an intermittent
//! publisher, for K ∈ {2, 3, 4}.
//!
//! Flash departures — many peers finishing the moment the publisher
//! returns — are the signature of a non-self-sustaining swarm; they fade
//! as K grows.

use crate::output::Report;
use serde_json::json;
use swarm_bt::{run as bt_run, BtConfig, BtPublisher};
use swarm_stats::ascii::{timeline, Segment, SegmentKind};

/// Regenerate Figure 5.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "fig5",
        "Arrival/departure timelines with an intermittent publisher (paper Figure 5)",
    );
    let mut data = Vec::new();
    // A single run's max flash burst is very noisy (it is a maximum over
    // bursts, normalised by a small completion count); at 4 or even 10
    // seeds the K=2 > K=4 ordering stays inside the Monte-Carlo noise.
    // 30 seeds separates the means cleanly, and the incremental engine
    // makes the 90 extra runs cost well under a second.
    let flash_seeds: u64 = 30;
    for k in [2u32, 3, 4] {
        let cfg = BtConfig {
            record_timeline: true,
            horizon: 1_200,
            drain_ticks: if quick { 600 } else { 1_200 },
            publisher: BtPublisher::OnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: true,
            },
            ..BtConfig::paper_section_4_3(k, 5040 + k as u64 * 7)
        };
        let r = bt_run(&cfg);
        // Flash-departure statistics averaged over independent seeds (a
        // single run's max burst is noisy).
        let mut flash_share_sum = 0.0;
        for seed in 0..flash_seeds {
            let rr = bt_run(&BtConfig {
                record_timeline: false,
                seed: 5100 + seed * 13 + k as u64,
                ..cfg.clone()
            });
            let total = rr.completion_curve.len().max(1) as f64;
            flash_share_sum += rr.max_flash_departures as f64 / total;
        }
        let flash_share = flash_share_sum / flash_seeds as f64;
        // Build timeline rows: publisher first, then up to 28 peers.
        let mut rows: Vec<(String, Vec<Segment>)> = Vec::new();
        rows.push((
            "publisher".into(),
            r.publisher_intervals
                .iter()
                .map(|&(a, b)| Segment {
                    start: a as f64,
                    end: b as f64,
                    kind: SegmentKind::Publisher,
                })
                .collect(),
        ));
        for (i, s) in r.spans.iter().take(28).enumerate() {
            let end = s.departed.unwrap_or(cfg.horizon + cfg.drain_ticks) as f64;
            rows.push((
                format!("peer{i:02}"),
                vec![Segment {
                    start: s.arrived as f64,
                    end,
                    kind: if s.completed.is_some() {
                        SegmentKind::Peer
                    } else {
                        SegmentKind::Waiting
                    },
                }],
            ));
        }
        report.block(timeline(
            &format!(
                "K={k}: each line is one peer (thick = publisher; dotted = never completed); \
                 mean flash-departure share over {flash_seeds} runs: {flash_share:.2}",
            ),
            &rows,
            0.0,
            1_800.0,
            84,
        ));
        data.push(json!({
            "k": k,
            "flash_departures": r.max_flash_departures,
            "flash_share": flash_share,
            "completions": r.completion_curve.len(),
            "arrivals": r.arrivals,
        }));
    }
    report.line("paper: K=2 shows synchronized flash departures; K=4 nearly eliminates blocking.");
    report.set_data(json!({ "runs": data }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_flash_share_decreases_with_k() {
        // Average over the three Ks rendered: the K=2 flash share must
        // exceed the K=4 share (Figure 5's visual claim).
        let r = run(true);
        let runs = r.data["runs"].as_array().unwrap();
        let share = |i: usize| runs[i]["flash_share"].as_f64().unwrap();
        assert!(
            share(0) > share(2),
            "K=2 share {} must exceed K=4 share {}",
            share(0),
            share(2)
        );
    }

    #[test]
    fn fig5_renders_publisher_and_peers() {
        let r = run(true);
        assert!(r.text.contains("publisher"));
        assert!(r.text.contains("peer00"));
        assert!(r.text.contains('='));
    }
}
