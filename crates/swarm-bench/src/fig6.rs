//! E8/E9/E10 — Figure 6: download time vs bundling strategy.
//!
//! * (a) homogeneous 50 kB/s peers, one publisher alternating on 300 s /
//!   off 900 s — the experimental optimum is K = 4 and the eq. (16) model
//!   predicts K = 5 with the right trend (§4.3.1);
//! * (b) heterogeneous (BitTyrant) upload capacities — the optimum moves
//!   up, consistent with the higher average capacity;
//! * (c) heterogeneous per-file popularities λᵢ = 1/(8i) — bundling hurts
//!   the most popular file and helps the rest.
//!
//! The flow-level simulator (coverage threshold m = 9, the paper's fitted
//! value) is the primary experimental substrate; the block-level engine
//! runs alongside it at reduced scale. Its piece-extinction cascades make
//! large-K swarms less self-sustaining than the paper's real swarms, a
//! deviation documented in EXPERIMENTS.md.

use crate::output::{table2, Report};
use serde_json::json;
use swarm_bt::{replicate as bt_replicate, BtConfig, CapacityDistribution};
use swarm_core::params::{PublisherScaling, SwarmParams};
use swarm_core::threshold;
use swarm_sim::{replicate, Patience, PublisherProcess, ServiceModel, SimConfig};
use swarm_stats::ascii::{box_plot_row, line_chart, Series};

/// §4.3 base parameters as a model/flow-sim configuration.
pub fn fig6_params() -> SwarmParams {
    SwarmParams {
        lambda: 1.0 / 60.0,
        size: 4_000.0,
        mu: 50.0,
        r: 1.0 / 900.0,
        u: 300.0,
    }
}

fn flow_sim_download_time(k: u32, mu: f64, reps: usize, seed: u64) -> f64 {
    flow_sim_stats(k, mu, reps, seed).mean
}

/// Mean plus spread of the flow-level download times — Figure 6(a) plots
/// variance bars, and the paper reads their trend (huge for K = 1-2,
/// minimal at the optimum).
fn flow_sim_stats(k: u32, mu: f64, reps: usize, seed: u64) -> swarm_stats::BoxPlot {
    let kf = k as f64;
    let cfg = SimConfig {
        lambda: kf / 60.0,
        service: ServiceModel::Exponential {
            mean: kf * 4_000.0 / mu,
        },
        publisher: PublisherProcess::SingleOnOff {
            on_mean: 300.0,
            off_mean: 900.0,
            initially_on: true,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: 9,
        horizon: 150_000.0,
        warmup: 5_000.0,
        seed,
        record_timeline: false,
    };
    replicate(&cfg, reps, threads())
        .pooled
        .download_times
        .box_plot()
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// E8 — Figure 6(a).
pub fn fig6a(quick: bool) -> Report {
    let mut report = Report::new(
        "fig6a",
        "Mean download time vs K, homogeneous capacities (paper Figure 6(a))",
    );
    let ks: Vec<u32> = (1..=8).collect();
    let reps = if quick { 3 } else { 10 };
    let base = fig6_params();

    let mut flow = Vec::new();
    let mut model = Vec::new();
    let mut block = Vec::new();
    let mut spread = Vec::new();
    for &k in &ks {
        let stats = flow_sim_stats(k, 50.0, reps, 6000 + k as u64);
        flow.push((k as f64, stats.mean));
        spread.push(stats);
        let b = base.bundle(k, PublisherScaling::Fixed);
        model.push((k as f64, threshold::single_publisher_download_time(&b, 9)));
        let bt = bt_replicate(
            &BtConfig::paper_section_4_3(k, 6100 + k as u64),
            if quick { 2 } else { 6 },
            threads(),
        );
        block.push((k as f64, bt.mean_download_time()));
    }
    report.block(line_chart(
        "E[T] (s) vs K",
        &[
            Series::new("flow-level simulation (m=9)", flow.clone()),
            Series::new("model eq. (16)", model.clone()),
            Series::new("block-level engine", block.clone()),
        ],
        64,
        18,
    ));
    let argmin = |v: &[(f64, f64)]| {
        v.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty")
            .0 as u32
    };
    report.line(format!(
        "optimal K: flow-sim {} (paper experiment: 4), model {} (paper model: 5)",
        argmin(&flow),
        argmin(&model)
    ));
    // The paper reads the variance trend off the error bars: huge for
    // K = 1-2 (publisher downtime variance), small at and past the
    // optimum (self-sustaining swarms).
    for (k, b) in ks.iter().zip(&spread) {
        report.line(format!(
            "  K={k}: mean {:>5.0} s, IQR [{:>5.0}, {:>5.0}], p95 {:>5.0}",
            b.mean, b.q1, b.q3, b.p95
        ));
    }
    report.set_data(json!({
        "flow": flow, "model": model, "block": block,
        "spread": spread,
        "k_opt_flow": argmin(&flow), "k_opt_model": argmin(&model),
    }));
    report
}

/// E9 — Figure 6(b): BitTyrant capacities.
pub fn fig6b(quick: bool) -> Report {
    let mut report = Report::new(
        "fig6b",
        "Mean download time vs K, heterogeneous capacities (paper Figure 6(b))",
    );
    let ks: Vec<u32> = (1..=8).collect();
    let reps = if quick { 3 } else { 10 };
    // The effective per-peer rate is NOT the raw mean upload (280 kB/s):
    // receivers cap what the fast tail can deliver. With 2008-era DSL
    // downlinks (~250 kB/s = 2 Mbps), μ_eff = E[min(upload, downlink)]
    // ≈ 112 kB/s — higher than 6(a)'s 50, as the paper reasons, which is
    // what pushes the optimal bundle size up.
    const DOWNLINK: f64 = 250.0;
    let mu_eff = CapacityDistribution::BitTyrant.mean_capped(DOWNLINK);
    let mut flow = Vec::new();
    let mut model = Vec::new();
    let mut block = Vec::new();
    for &k in &ks {
        flow.push((
            k as f64,
            flow_sim_download_time(k, mu_eff, reps, 6200 + k as u64),
        ));
        let b = SwarmParams {
            mu: mu_eff,
            ..fig6_params()
        }
        .bundle(k, PublisherScaling::Fixed);
        model.push((k as f64, threshold::single_publisher_download_time(&b, 9)));
        let cfg = BtConfig {
            peer_capacity: CapacityDistribution::BitTyrant,
            download_cap: DOWNLINK,
            ..BtConfig::paper_section_4_3(k, 6300 + k as u64)
        };
        let bt = bt_replicate(&cfg, if quick { 2 } else { 6 }, threads());
        block.push((k as f64, bt.mean_download_time()));
    }
    report.block(line_chart(
        "E[T] (s) vs K (BitTyrant uploads, 250 kB/s downlinks; mu_eff = E[min(up, down)])",
        &[
            Series::new("flow-level simulation (m=9)", flow.clone()),
            Series::new("model eq. (16)", model.clone()),
            Series::new("block-level engine", block.clone()),
        ],
        64,
        18,
    ));
    let argmin = |v: &[(f64, f64)]| {
        v.iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty")
            .0 as u32
    };
    report.line(format!(
        "optimal K: flow-sim {} (paper: 5 — larger than 6(a)'s 4 because capacity rose)",
        argmin(&flow)
    ));
    report.set_data(json!({
        "flow": flow, "model": model, "block": block,
        "k_opt_flow": argmin(&flow),
        "mu_eff": mu_eff,
    }));
    report
}

/// E10 — Figure 6(c): heterogeneous popularities λᵢ = 1/(8i).
pub fn fig6c(quick: bool) -> Report {
    let mut report = Report::new(
        "fig6c",
        "Download time with heterogeneous popularities (paper Figure 6(c))",
    );
    let reps = if quick { 3 } else { 10 };
    let mut rows = Vec::new();
    let mut data = Vec::new();
    let mut all_boxes = Vec::new();

    // Experiments 1-4: individual files with λᵢ = 1/(8i) peers/s. The
    // coverage threshold scales with content size (fewer peers suffice to
    // cover a single 4 MB file than a 16 MB bundle): m = ceil(9·s/S) = 3.
    for i in 1..=4u32 {
        let lambda = 1.0 / (8.0 * i as f64);
        let cfg = SimConfig {
            lambda,
            service: ServiceModel::Exponential { mean: 80.0 },
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: true,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 3,
            horizon: 100_000.0,
            warmup: 5_000.0,
            seed: 6400 + i as u64,
            record_timeline: false,
        };
        let mut rep = replicate(&cfg, reps, threads());
        let b = rep.pooled.download_times.box_plot();
        all_boxes.push((format!("file {i}"), b));
        data.push(json!({ "experiment": i, "lambda": lambda, "mean": b.mean, "box": b }));
    }

    // Experiment 5: the bundle of all four files (λ = Σ = 1/3.84).
    let lambda_bundle = (1..=4).map(|i| 1.0 / (8.0 * i as f64)).sum::<f64>();
    let cfg = SimConfig {
        lambda: lambda_bundle,
        service: ServiceModel::Exponential { mean: 320.0 },
        publisher: PublisherProcess::SingleOnOff {
            on_mean: 300.0,
            off_mean: 900.0,
            initially_on: true,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: 9,
        horizon: 100_000.0,
        warmup: 5_000.0,
        seed: 6405,
        record_timeline: false,
    };
    let mut rep = replicate(&cfg, reps, threads());
    let b = rep.pooled.download_times.box_plot();
    all_boxes.push(("bundle".to_string(), b));
    data.push(json!({ "experiment": 5, "lambda": lambda_bundle, "mean": b.mean, "box": b }));

    let hi = all_boxes.iter().map(|x| x.1.p95).fold(0.0f64, f64::max) * 1.05;
    for (label, bx) in &all_boxes {
        rows.push(box_plot_row(label, bx, 0.0, hi, 60));
    }
    report.line("quartile boxes with 5th/95th percentile whiskers (x: download time, s):");
    for r in rows {
        report.block(r);
    }
    report.line("paper: bundle mean 405 s — above file 1 alone (329 s) but below files 2-4 alone.");
    report.block(table2(
        ("experiment", "mean download time (s)"),
        &all_boxes
            .iter()
            .map(|(l, b)| (l.clone(), format!("{:.0}", b.mean)))
            .collect::<Vec<_>>(),
    ));
    report.set_data(json!({ "experiments": data }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_flow_sim_matches_paper_shape() {
        let r = fig6a(true);
        let k_opt = r.data["k_opt_flow"].as_u64().unwrap();
        assert!(
            (3..=5).contains(&k_opt),
            "flow-sim optimum {k_opt} should be near the paper's 4"
        );
        let k_model = r.data["k_opt_model"].as_u64().unwrap();
        assert!(
            (3..=6).contains(&k_model),
            "model optimum {k_model} should be near the paper's 5"
        );
        // K=1 wait-dominated vs optimum.
        let flow: Vec<(f64, f64)> = serde_json::from_value(r.data["flow"].clone()).unwrap();
        let t1 = flow[0].1;
        let topt = flow[(k_opt - 1) as usize].1;
        assert!(t1 > 1.8 * topt, "K=1 {t1} must dwarf optimum {topt}");
        // Past the optimum the curve rises.
        assert!(flow[7].1 > topt);
    }

    #[test]
    fn fig6b_optimum_at_least_fig6a() {
        let a = fig6a(true);
        let b = fig6b(true);
        let ka = a.data["k_opt_flow"].as_u64().unwrap();
        let kb = b.data["k_opt_flow"].as_u64().unwrap();
        assert!(
            kb >= ka,
            "higher capacity needs bigger bundles: 6(b) {kb} vs 6(a) {ka}"
        );
    }

    #[test]
    fn fig6c_bundle_helps_unpopular_files() {
        let r = fig6c(true);
        let exps = r.data["experiments"].as_array().unwrap();
        let mean = |i: usize| exps[i]["mean"].as_f64().unwrap();
        // The popular file sees times far below the unpopular ones.
        assert!(
            mean(3) > 1.5 * mean(0),
            "file4 {} vs file1 {}",
            mean(3),
            mean(0)
        );
        // The bundle beats every unpopular file alone...
        let bundle = mean(4);
        for i in 1..=3 {
            assert!(
                bundle < mean(i),
                "bundle {bundle} vs file{} {}",
                i + 1,
                mean(i)
            );
        }
        // ...while being roughly neutral for the most popular file (the
        // paper reports a slight loss, 405 vs 329 s; our flow-level runs
        // put the two within noise of each other).
        assert!(
            (bundle - mean(0)).abs() / mean(0) < 0.35,
            "bundle {bundle} vs file1 {} should be comparable",
            mean(0)
        );
    }
}
