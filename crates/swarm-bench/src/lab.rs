//! swarm-lab job registry for the reproduction suite: every experiment
//! id wrapped as a typed [`JobSpec`] with a measured cost hint, an
//! inner-parallelism hint and its declared artifacts, so the `repro`
//! binary can hand the whole suite to the orchestrator.

use crate::output::Report;
use crate::run_experiment;
use swarm_lab::{JobOutput, JobSpec};

/// Measured quick-mode wall seconds per experiment (reference machine,
/// release build). Only relative magnitude matters: the scheduler
/// dispatches longest-first, so the expensive figure-6 sweeps and the
/// measurement-study experiments start immediately instead of
/// stretching the tail of the run.
///
/// Re-measured after the quiescence fast-forward landed: the ordering
/// barely moved, because the figure experiments simulate mostly-busy
/// swarms whose rechoke boundaries bound every elidable gap. The
/// order-of-magnitude wins live in the long-horizon unavailable-
/// publisher regimes exercised by the `bt_idle` benchmark instead.
///
/// The `catalog` family (the `catalog-live` experiment plus the live
/// arms inside `fig1`/`table-books`/`table-friends`) was measured after
/// the sharded runtime landed: the event-driven engine makes the live
/// arm cheaper than the hourly sampled arm it sits beside, so `fig1`
/// barely moved and `catalog-live` itself is mid-pack.
fn quick_cost(id: &str) -> f64 {
    match id {
        "fig6a" => 1.6,
        "fig6b" => 1.4,
        "ablation-bias" => 1.2,
        "fig1" => 1.1,
        "catalog-live" => 0.4,
        "ablation-selection" | "fig5" | "fig6c" => 0.7,
        "ablation-threshold" => 0.35,
        "fig4" => 0.2,
        "table-books" | "fig3" | "ablation-trace" | "ablation-service" => 0.1,
        _ => 0.05,
    }
}

/// Experiments whose implementation replicates runs across worker
/// threads (via `swarm_stats::parallel`); everything else is a
/// single-threaded closed-form evaluation.
fn is_replicated(id: &str) -> bool {
    matches!(
        id,
        "fig1"
            | "catalog-live"
            | "table-books"
            | "table-friends"
            | "fig4"
            | "fig5"
            | "fig6a"
            | "fig6b"
            | "fig6c"
            | "ablation-baseline"
            | "ablation-service"
            | "ablation-trace"
            | "ablation-selection"
            | "ablation-bias"
    )
}

/// Build the job for one experiment id; `None` for unknown ids.
pub fn job_spec(id: &str, quick: bool) -> Option<JobSpec> {
    if !crate::EXPERIMENTS.contains(&id) {
        return None;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let id_owned = id.to_string();
    // Full-fidelity runs replicate more and simulate longer; a uniform
    // scale factor preserves the quick-mode ordering.
    let cost = quick_cost(id) * if quick { 1.0 } else { 5.0 };
    Some(
        JobSpec::new(id, format!("reproduction experiment {id}"), move || {
            let report = run_experiment(&id_owned, quick).expect("registered experiment id");
            report_output(&report)
        })
        .cost_hint(cost)
        .threads_hint(if is_replicated(id) { cores } else { 1 })
        .artifacts(Report::artifact_names(id)),
    )
}

/// Build jobs for a list of ids; `Err` carries the first unknown id.
pub fn job_specs<'a>(
    ids: impl IntoIterator<Item = &'a str>,
    quick: bool,
) -> Result<Vec<JobSpec>, String> {
    ids.into_iter()
        .map(|id| job_spec(id, quick).ok_or_else(|| id.to_string()))
        .collect()
}

/// Convert a finished [`Report`] into the orchestrator's self-contained
/// output form.
pub fn report_output(report: &Report) -> JobOutput {
    let mut out = JobOutput::text_only(report.text.clone());
    for (name, contents) in report.artifacts() {
        out = out.with_artifact(name, contents);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EXPERIMENTS;

    #[test]
    fn every_experiment_has_a_job_spec() {
        for id in EXPERIMENTS {
            let spec = job_spec(id, true).unwrap_or_else(|| panic!("{id} must have a job"));
            assert_eq!(spec.id, *id);
            assert!(spec.cost_hint > 0.0);
            assert!(spec.threads_hint >= 1);
            assert_eq!(spec.artifacts, Report::artifact_names(id));
        }
        assert!(job_spec("nonexistent", true).is_none());
    }

    #[test]
    fn job_output_matches_direct_run() {
        // The job closure must produce exactly what the experiment
        // renders — declared names included.
        let spec = job_spec("table-bm", true).expect("registered");
        let out = spec.execute();
        let direct = run_experiment("table-bm", true).expect("runs");
        assert_eq!(out.text, direct.text);
        let names: Vec<&str> = out.artifacts.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["table-bm.txt", "table-bm.json"]);
    }

    #[test]
    fn unknown_ids_are_rejected_in_bulk() {
        let err = job_specs(["fig2", "bogus"], true).expect_err("bogus must fail");
        assert_eq!(err, "bogus");
    }
}
