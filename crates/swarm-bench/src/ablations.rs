//! A1–A6 — ablations over the design choices DESIGN.md calls out.

use crate::fig6::fig6_params;
use crate::output::{table2, Report};
use serde_json::json;
use swarm_core::baseline::FluidParams;
use swarm_core::bundling::{optimal_bundle_size, sweep_single_publisher};
use swarm_core::params::{PublisherScaling, SwarmParams};
use swarm_core::{asymptotic, impatient, lingering, patient, threshold, zipf::ZipfProfile};
use swarm_sim::{replicate, Patience, PublisherProcess, ServiceModel, SimConfig};

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// A1 — coverage-threshold sensitivity: how m moves B(m) and the optimal
/// bundle size.
pub fn threshold_sensitivity(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-threshold",
        "Coverage threshold m: sensitivity of B(m) and the optimal K",
    );
    let base = fig6_params();
    let ks: Vec<u32> = (1..=10).collect();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for m in [1u64, 3, 6, 9, 15] {
        let pts = sweep_single_publisher(&base, PublisherScaling::Fixed, m, &ks);
        let best = pts
            .iter()
            .min_by(|a, b| {
                a.download_time
                    .partial_cmp(&b.download_time)
                    .expect("finite")
            })
            .expect("nonempty");
        let bm4 = threshold::residual_busy_period(&base.bundle(4, PublisherScaling::Fixed), m);
        rows.push((
            format!("m={m}"),
            format!(
                "optimal K = {} (E[T] = {:.0} s), B(m) at K=4: {:.0} s",
                best.k, best.download_time, bm4
            ),
        ));
        data.push(json!({ "m": m, "k_opt": best.k, "t_opt": best.download_time, "bm_k4": bm4 }));
    }
    report.block(table2(("threshold", "effect"), &rows));
    report.line("a stricter coverage requirement (larger m) pushes the optimal bundle size up.");
    report.set_data(json!({ "rows": data }));
    report
}

/// A2 — lingering vs bundling: the eq. (15) equivalence.
pub fn lingering_ablation(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-lingering",
        "Altruistic lingering vs bundling (paper §3.3.4, eq. 15)",
    );
    // Small unpopular file 1 + large popular file 2.
    let (mu, s1, s2) = (50.0, 1_000.0, 40_000.0);
    let (l1, l2) = (1.0 / 2_000.0, 1.0 / 20.0);
    let (residence, linger) = lingering::equivalent_lingering(l1, s1, l2, s2, mu);
    report.line(format!(
        "to match the bundle's availability, swarm-1 peers must stay {residence:.0} s \
         ({linger:.0} s of lingering) vs a bundle download of {:.0} s",
        (s1 + s2) / mu
    ));

    // Model sweep: availability of the small swarm vs lingering time.
    let small = SwarmParams {
        lambda: l1,
        size: s1,
        mu,
        r: 1.0 / 5_000.0,
        u: 100.0,
    };
    let mut rows = Vec::new();
    let mut avail = Vec::new();
    for linger_s in [1.0, 100.0, 1_000.0, 10_000.0] {
        let p = lingering::unavailability(&small, 1.0 / linger_s);
        rows.push((
            format!("linger {linger_s:>6.0} s"),
            format!("unavailability {p:.4}"),
        ));
        avail.push(json!({ "linger": linger_s, "unavailability": p }));
    }
    report.block(table2(("lingering", "availability"), &rows));
    report.line("lingering buys availability, but matching a bundle requires staying orders of magnitude longer than the bundle download itself.");
    report.set_data(json!({
        "required_residence": residence,
        "required_linger": linger,
        "bundle_download": (s1 + s2) / mu,
        "sweep": avail,
    }));
    report
}

/// A3 — Zipf demand: does the e^Θ(K²) law survive skew?
pub fn zipf_ablation(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-zipf",
        "Zipf per-file demand: Lemma 3.1 under skew (paper §3.3.1)",
    );
    let per_file = fig6_params();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for delta in [0.0, 0.5, 1.0, 2.0] {
        // Bundle of K files whose aggregate demand follows a Zipf profile
        // over a catalog of K·λ̄ total demand.
        let pts: Vec<(f64, f64)> = (1..=6u32)
            .map(|k| {
                let profile = ZipfProfile::new(k, delta);
                let rates = profile.rates(per_file.lambda * k as f64);
                let aggregate: f64 = rates.iter().sum();
                let bundle = SwarmParams {
                    lambda: aggregate,
                    size: per_file.size * k as f64,
                    ..per_file
                };
                (k as f64, impatient::ln_mean_peers_served(&bundle))
            })
            .collect();
        let fit = asymptotic::fit_k_squared(&pts);
        rows.push((
            format!("delta={delta}"),
            format!("ln E[N] ~ {:.3}·K², r² = {:.4}", fit.slope, fit.r2),
        ));
        data.push(json!({ "delta": delta, "slope": fit.slope, "r2": fit.r2 }));
    }
    report.block(table2(("skew", "quadratic fit"), &rows));
    report.line("the quadratic law holds at every skew (aggregate demand is what matters).");
    report.set_data(json!({ "fits": data }));
    report
}

/// A4 — publisher scaling: R fixed vs R = Kr vs R = r·e^{−cK²}.
pub fn publisher_ablation(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-publisher",
        "Publisher scaling under bundling (Theorem 3.1 and its robustness remark)",
    );
    let base = fig6_params();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for k in [1u32, 2, 4, 6] {
        let fixed = impatient::ln_unavailability(&base.bundle(k, PublisherScaling::Fixed));
        let prop = impatient::ln_unavailability(&base.bundle(k, PublisherScaling::Proportional));
        let kf = k as f64;
        let shrunk = impatient::ln_unavailability(&base.bundle(
            k,
            PublisherScaling::Custom {
                r: base.r * (-0.05 * kf * kf).exp(),
                u: base.u,
            },
        ));
        rows.push((
            format!("K={k}"),
            format!("ln P: fixed {fixed:.1}, proportional {prop:.1}, shrinking-R {shrunk:.1}"),
        ));
        data.push(json!({ "k": k, "fixed": fixed, "proportional": prop, "shrinking": shrunk }));
    }
    report.block(table2(("bundle", "ln unavailability"), &rows));
    report.line(
        "unavailability collapses with K under every scaling — even when the \
         bundle's publisher arrival rate shrinks as e^(-cK²) (the paper's \
         robustness remark).",
    );
    report.set_data(json!({ "rows": data }));
    report
}

/// A5 — the naive fluid baseline vs the availability model.
pub fn baseline_ablation(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-baseline",
        "Naive fluid model vs the availability model (Related Work contrast)",
    );
    // A rare publisher: the availability model sees a bundling optimum,
    // the fluid model cannot.
    let file = SwarmParams {
        lambda: 1.0 / 60.0,
        size: 4_000.0,
        mu: 50.0,
        r: 1.0 / 5_000.0,
        u: 300.0,
    };
    let fluid = FluidParams {
        size: file.size,
        upload: file.mu,
        download_cap: 4_000.0,
        eta: 1.0,
        seed_departure: 1.0 / 30.0,
    };
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for k in 1..=8u32 {
        let b = file.bundle(k, PublisherScaling::Fixed);
        let t_avail = patient::download_time(&b);
        let t_fluid = fluid.bundle_download_time(k);
        rows.push((
            format!("K={k}"),
            format!("availability model {t_avail:>7.0} s | fluid baseline {t_fluid:>6.0} s"),
        ));
        data.push(json!({ "k": k, "availability_model": t_avail, "fluid": t_fluid }));
    }
    report.block(table2(("bundle", "mean download time"), &rows));
    let (k_opt, _) = optimal_bundle_size(&file, PublisherScaling::Fixed, 8);
    report.line(format!(
        "the availability model finds an interior optimum (K = {k_opt}); the fluid \
         baseline grows strictly linearly and would never bundle."
    ));
    report.set_data(json!({ "rows": data, "k_opt_availability": k_opt }));
    report
}

/// A6 — service-model ablation: exponential vs capacity-shared fluid
/// service in the flow simulator.
pub fn service_ablation(quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-service",
        "Service model: exponential vs capacity-shared fluid (conclusions survive)",
    );
    let reps = if quick { 2 } else { 6 };
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for k in [1u32, 4] {
        let kf = k as f64;
        let mk = |service| SimConfig {
            lambda: kf / 60.0,
            service,
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: true,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 9,
            horizon: 60_000.0,
            warmup: 3_000.0,
            seed: 9000 + k as u64,
            record_timeline: false,
        };
        let exp = replicate(
            &mk(ServiceModel::Exponential { mean: 80.0 * kf }),
            reps,
            threads(),
        );
        let fluid = replicate(
            &mk(ServiceModel::Fluid {
                size: 4_000.0 * kf,
                peer_upload: 50.0,
                publisher_upload: 100.0,
                download_cap: 4_000.0,
            }),
            reps,
            threads(),
        );
        rows.push((
            format!("K={k}"),
            format!(
                "exponential {:.0} s | fluid {:.0} s",
                exp.pooled.mean_download_time(),
                fluid.pooled.mean_download_time()
            ),
        ));
        data.push(json!({
            "k": k,
            "exponential": exp.pooled.mean_download_time(),
            "fluid": fluid.pooled.mean_download_time(),
        }));
    }
    report.block(table2(("bundle", "mean download time"), &rows));
    report.line("both service models agree: K=4 beats K=1 under the intermittent publisher.");
    report.set_data(json!({ "rows": data }));
    report
}

/// A7 — trace-driven arrivals (paper §4.3.4): replaying bursty measured
/// patterns instead of Poisson arrivals does not change the conclusions.
pub fn trace_ablation(quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-trace",
        "Trace-driven arrivals vs Poisson (paper §4.3.4)",
    );
    use rand::SeedableRng;
    let reps = if quick { 3 } else { 6 };
    let horizon = 100_000.0;
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for k in [1u32, 4] {
        let kf = k as f64;
        let cfg = SimConfig {
            lambda: kf / 60.0,
            service: ServiceModel::Exponential { mean: 80.0 * kf },
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: true,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 9,
            horizon,
            warmup: 5_000.0,
            seed: 9100 + k as u64,
            record_timeline: false,
        };
        // Poisson baseline.
        let poisson = replicate(&cfg, reps, threads()).pooled.mean_download_time();
        // Trace-driven: a decaying "old swarm settling" pattern with the
        // same long-run mean rate, bootstrap-replicated per run.
        let mut t_sum = 0.0;
        for rep in 0..reps {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9200 + rep as u64 + k as u64);
            let base = swarm_queue::arrivals::nonhomogeneous_poisson(
                |t| (kf / 60.0) * (0.6 + 0.8 * (-t / 30_000.0).exp()),
                kf / 60.0 * 1.4,
                horizon,
                &mut rng,
            );
            let resampled = swarm_sim::trace::resample_interarrivals(&base, &mut rng);
            let c = SimConfig {
                seed: cfg.seed + rep as u64,
                ..cfg
            };
            t_sum += swarm_sim::run_trace(&c, &resampled).mean_download_time();
        }
        let traced = t_sum / reps as f64;
        rows.push((
            format!("K={k}"),
            format!("Poisson {poisson:.0} s | trace-driven {traced:.0} s"),
        ));
        data.push(json!({ "k": k, "poisson": poisson, "trace": traced }));
    }
    report.block(table2(("bundle", "mean download time"), &rows));
    report
        .line("the K=4 bundle beats K=1 under both arrival models (the paper's robustness check).");
    report.set_data(json!({ "rows": data }));
    report
}

/// A8 — piece selection and super-seeding in the block engine: how fast
/// does the full content get injected into the peer population?
pub fn selection_ablation(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-selection",
        "Piece selection and super-seeding: unique-piece injection speed",
    );
    use swarm_bt::config::PieceSelection;
    use swarm_bt::{run as bt_run, BtConfig, BtPublisher};
    // Full-coverage ticks have a seed-to-seed spread of several hundred
    // seconds; 3 seeds was not enough to keep the super-seeding ordering
    // out of the Monte-Carlo noise, so quick mode averages 6 too (the
    // incremental engine made the extra runs cheap).
    let seeds: u64 = 6;
    let coverage_tick = |super_seed: bool, selection: PieceSelection| -> f64 {
        (0..seeds)
            .map(|s| {
                let cfg = BtConfig {
                    publisher: BtPublisher::AlwaysOn,
                    super_seed,
                    piece_selection: selection,
                    record_timeline: true,
                    horizon: 2_000,
                    drain_ticks: 0,
                    ..BtConfig::paper_section_4_2(6, 9300 + s)
                };
                let r = bt_run(&cfg);
                let full = cfg.num_pieces();
                r.peer_coverage_curve
                    .iter()
                    .find(|&&(_, c)| c == full)
                    .map(|&(t, _)| t as f64)
                    .unwrap_or(2_000.0)
            })
            .sum::<f64>()
            / seeds as f64
    };
    let rarest = coverage_tick(false, PieceSelection::RarestFirst);
    let rarest_ss = coverage_tick(true, PieceSelection::RarestFirst);
    let random = coverage_tick(false, PieceSelection::Random);
    let random_ss = coverage_tick(true, PieceSelection::Random);
    let in_order = coverage_tick(false, PieceSelection::InOrder);
    report.block(table2(
        ("policy", "mean tick of full peer coverage (K=6 seedless)"),
        &[
            ("rarest-first".into(), format!("{rarest:.0} s")),
            ("rarest + superseed".into(), format!("{rarest_ss:.0} s")),
            ("random".into(), format!("{random:.0} s")),
            ("random + superseed".into(), format!("{random_ss:.0} s")),
            ("in-order (streaming)".into(), format!("{in_order:.0} s")),
        ],
    ));
    report.line(
        "rarest-first already injects near-optimally (Legout et al.'s \
         'rarest-first is enough'); super-seeding only pays when the \
         downloaders' selection is impaired.",
    );
    report.set_data(json!({
        "rarest": rarest, "rarest_super": rarest_ss,
        "random": random, "random_super": random_ss,
        "in_order": in_order,
    }));
    report
}

/// A9 — observation bias in the measurement study: imperfect peer
/// discovery shifts the Figure 1 CDF but preserves its shape.
pub fn bias_ablation(quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-bias",
        "Monitoring-agent observation bias (measurement methodology)",
    );
    use rand::SeedableRng;
    use swarm_measurement::{bias_study, generate_catalog, CatalogConfig, Observer};
    let scale = if quick { 0.001 } else { 0.004 };
    let catalog = generate_catalog(&CatalogConfig { scale, seed: 9400 });
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for det in [1.0, 0.9, 0.7, 0.5] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9401);
        let study = bias_study(&catalog, 3, Observer::new(det), &mut rng);
        rows.push((
            format!("detection {det}"),
            format!(
                "KS bias {:.3}, mean availability shift -{:.3}, \
                 measured P(avail<=0.2) {:.2} (true {:.2})",
                study.ks_bias(),
                study.mean_shift(),
                study.measured_cdf.eval(0.2),
                study.true_cdf.eval(0.2),
            ),
        ));
        data.push(json!({
            "detection": det,
            "ks_bias": study.ks_bias(),
            "mean_shift": study.mean_shift(),
            "measured_mostly_off": study.measured_cdf.eval(0.2),
            "true_mostly_off": study.true_cdf.eval(0.2),
        }));
    }
    report.block(table2(("observer", "bias"), &rows));
    report.line("imperfect discovery biases availability downward but never flips the 'mostly unavailable' conclusion.");
    report.set_data(json!({ "rows": data }));
    report
}

/// A10 — mixed vs pure bundling (paper §5): the take-rate spectrum.
pub fn mixed_ablation(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-mixed",
        "Mixed vs pure bundling: the take-rate spectrum (paper §5)",
    );
    use swarm_core::mixed::{mixed_bundling, FileSpec};
    let files = vec![
        FileSpec {
            lambda: 1.0 / 5.0,
            size: 4_000.0,
        }, // the hit
        FileSpec {
            lambda: 1.0 / 600.0,
            size: 4_000.0,
        }, // niche
        FileSpec {
            lambda: 1.0 / 1_200.0,
            size: 4_000.0,
        },
    ];
    let (mu, r, u) = (50.0, 1.0 / 5_000.0, 300.0);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for phi in [0.0, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let o = mixed_bundling(&files, mu, r, u, phi);
        rows.push((
            format!("phi={phi}"),
            format!(
                "P(hit) {:.5} | P(niche) {:.4} | bundle E[T] {:.0} s",
                o.files[0].unavailability,
                o.files[2].unavailability,
                o.files[0].bundle_download_time
            ),
        ));
        data.push(json!({
            "phi": phi,
            "p_hit": o.files[0].unavailability,
            "p_niche": o.files[2].unavailability,
            "bundle_t": o.files[0].bundle_download_time,
        }));
    }
    report.block(table2(("take rate", "outcome"), &rows));
    report.line(
        "even a 5-10% take rate slashes niche-file unavailability — the \
         paper's 'even a small fraction of users opting to download more \
         content... can significantly improve availability.'",
    );
    report.set_data(json!({ "rows": data }));
    report
}

/// A11 — catalog partitioning (the §5 open question): how much does
/// optimizing bundle *composition* buy over naive strategies?
pub fn partition_ablation(_quick: bool) -> Report {
    let mut report = Report::new(
        "ablation-partition",
        "Optimal bundle composition over a heterogeneous catalog (paper §5 open question)",
    );
    use swarm_core::partition::{
        evaluate_partition, greedy_partition, local_search, CatalogFile, Environment,
    };
    let files: Vec<CatalogFile> = vec![
        CatalogFile {
            lambda: 1.0 / 8.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 12.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 40.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 90.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 150.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 300.0,
            size: 2_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 600.0,
            size: 2_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 900.0,
            size: 2_000.0,
        },
    ];
    let env = Environment {
        mu: 50.0,
        r: 1.0 / 20_000.0,
        u: 300.0,
    };
    let singletons: Vec<Vec<usize>> = (0..files.len()).map(|i| vec![i]).collect();
    let giant: Vec<Vec<usize>> = vec![(0..files.len()).collect()];
    let t_single = evaluate_partition(&files, &singletons, env);
    let t_giant = evaluate_partition(&files, &giant, env);
    let greedy = greedy_partition(&files, env);
    let t_greedy = evaluate_partition(&files, &greedy, env);
    let (refined, t_refined) = local_search(&files, greedy.clone(), env, 100);
    report.block(table2(
        ("strategy", "demand-weighted E[T] (s)"),
        &[
            ("all singletons".into(), format!("{t_single:.0}")),
            ("one giant bundle".into(), format!("{t_giant:.0}")),
            ("greedy merges".into(), format!("{t_greedy:.0}")),
            ("greedy + local search".into(), format!("{t_refined:.0}")),
        ],
    ));
    report.line(format!(
        "recommended plan: {refined:?} — hits stay lean, the long tail pools \
         enough demand to self-sustain."
    ));
    report.set_data(json!({
        "singletons": t_single,
        "giant": t_giant,
        "greedy": t_greedy,
        "refined": t_refined,
        "plan": refined,
    }));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_optimal_k_nondecreasing_in_m() {
        let r = threshold_sensitivity(true);
        let rows = r.data["rows"].as_array().unwrap();
        let kopts: Vec<u64> = rows.iter().map(|x| x["k_opt"].as_u64().unwrap()).collect();
        assert!(kopts.windows(2).all(|w| w[0] <= w[1]), "{kopts:?}");
        // B(m) falls as m rises.
        let bms: Vec<f64> = rows.iter().map(|x| x["bm_k4"].as_f64().unwrap()).collect();
        assert!(bms.windows(2).all(|w| w[0] >= w[1]), "{bms:?}");
    }

    #[test]
    fn a2_lingering_requirement_dwarfs_bundle_download() {
        let r = lingering_ablation(true);
        let need = r.data["required_residence"].as_f64().unwrap();
        let bundle = r.data["bundle_download"].as_f64().unwrap();
        assert!(need > 20.0 * bundle, "need {need} vs bundle {bundle}");
        // Unavailability falls monotonically with lingering.
        let sweep = r.data["sweep"].as_array().unwrap();
        let ps: Vec<f64> = sweep
            .iter()
            .map(|x| x["unavailability"].as_f64().unwrap())
            .collect();
        assert!(ps.windows(2).all(|w| w[0] >= w[1]), "{ps:?}");
    }

    #[test]
    fn a3_quadratic_fit_survives_skew() {
        let r = zipf_ablation(true);
        for fit in r.data["fits"].as_array().unwrap() {
            assert!(fit["r2"].as_f64().unwrap() > 0.98, "{fit}");
            assert!(fit["slope"].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn a4_unavailability_collapses_under_all_scalings() {
        let r = publisher_ablation(true);
        let rows = r.data["rows"].as_array().unwrap();
        for key in ["fixed", "proportional", "shrinking"] {
            let lnp: Vec<f64> = rows.iter().map(|x| x[key].as_f64().unwrap()).collect();
            assert!(
                lnp.windows(2).all(|w| w[1] <= w[0] + 1e-9),
                "{key}: {lnp:?}"
            );
            assert!(lnp.last().unwrap() < &-8.0, "{key} must collapse: {lnp:?}");
        }
    }

    #[test]
    fn a5_fluid_never_finds_the_optimum() {
        let r = baseline_ablation(true);
        let rows = r.data["rows"].as_array().unwrap();
        let fluid: Vec<f64> = rows.iter().map(|x| x["fluid"].as_f64().unwrap()).collect();
        assert!(
            fluid.windows(2).all(|w| w[1] > w[0]),
            "fluid strictly increasing"
        );
        let avail: Vec<f64> = rows
            .iter()
            .map(|x| x["availability_model"].as_f64().unwrap())
            .collect();
        let min_idx = avail
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0,
            "availability model must have an interior optimum"
        );
    }

    #[test]
    fn a7_trace_driven_preserves_bundling_gain() {
        let r = trace_ablation(true);
        let rows = r.data["rows"].as_array().unwrap();
        for key in ["poisson", "trace"] {
            let t1 = rows[0][key].as_f64().unwrap();
            let t4 = rows[1][key].as_f64().unwrap();
            assert!(t4 < t1, "{key}: K=4 {t4} must beat K=1 {t1}");
        }
    }

    #[test]
    fn a8_rarest_first_is_enough() {
        let r = selection_ablation(true);
        let rarest = r.data["rarest"].as_f64().unwrap();
        let random = r.data["random"].as_f64().unwrap();
        let random_ss = r.data["random_super"].as_f64().unwrap();
        let in_order = r.data["in_order"].as_f64().unwrap();
        assert!(rarest < random, "rarest {rarest} vs random {random}");
        assert!(
            random_ss < random,
            "superseed {random_ss} vs random {random}"
        );
        // Streaming-style pickup is the worst for coverage.
        assert!(in_order >= random, "in-order {in_order} vs random {random}");
    }

    #[test]
    fn a9_bias_is_downward_and_bounded() {
        let r = bias_ablation(true);
        let rows = r.data["rows"].as_array().unwrap();
        let mut prev_shift = -1e-9;
        for row in rows {
            let shift = row["mean_shift"].as_f64().unwrap();
            assert!(
                shift >= prev_shift - 0.02,
                "bias should grow as detection falls"
            );
            prev_shift = shift;
            // The conclusion survives: measured mostly-off >= true.
            assert!(
                row["measured_mostly_off"].as_f64().unwrap()
                    >= row["true_mostly_off"].as_f64().unwrap() - 1e-9
            );
        }
    }

    #[test]
    fn a10_take_rate_slashes_niche_unavailability() {
        let r = mixed_ablation(true);
        let rows = r.data["rows"].as_array().unwrap();
        let p0 = rows[0]["p_niche"].as_f64().unwrap();
        let p10 = rows[2]["p_niche"].as_f64().unwrap(); // phi = 0.1
        assert!(p10 < 0.5 * p0, "phi=0.1 niche {p10} vs none {p0}");
        // Monotone decreasing in phi.
        let ps: Vec<f64> = rows
            .iter()
            .map(|x| x["p_niche"].as_f64().unwrap())
            .collect();
        assert!(ps.windows(2).all(|w| w[1] <= w[0] + 1e-12), "{ps:?}");
    }

    #[test]
    fn a11_optimized_partition_beats_naive_strategies() {
        let r = partition_ablation(true);
        let single = r.data["singletons"].as_f64().unwrap();
        let giant = r.data["giant"].as_f64().unwrap();
        let refined = r.data["refined"].as_f64().unwrap();
        assert!(
            refined <= giant + 1e-9,
            "optimizer must not lose to the giant bundle"
        );
        assert!(refined < single, "optimizer must beat no-bundling");
    }

    #[test]
    fn a6_bundling_wins_under_both_service_models() {
        let r = service_ablation(true);
        let rows = r.data["rows"].as_array().unwrap();
        for key in ["exponential", "fluid"] {
            let t1 = rows[0][key].as_f64().unwrap();
            let t4 = rows[1][key].as_f64().unwrap();
            assert!(t4 < t1, "{key}: K=4 {t4} must beat K=1 {t1}");
        }
    }
}
