//! Reproduction harness: one module per table/figure of the paper, plus
//! ablations. The `repro` binary dispatches on experiment id; each
//! experiment returns a [`output::Report`] with rendered text and JSON.
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `fig1` | Figure 1 — CDF of seed availability |
//! | `catalog-live` | E1 substrate — sharded catalog runtime aggregates |
//! | `table-bundling` | §2.3.1 — extent of bundling |
//! | `table-books` | §2.3.2 — books vs collections |
//! | `table-friends` | §2.3.2 — the "Friends" case study |
//! | `fig2` | Figure 2 — busy/idle timeline |
//! | `fig3` | Figure 3 — E[T] vs K over publisher scarcity |
//! | `fig4` | Figure 4 — seedless swarms |
//! | `table-bm` | §4.2 — B(m) values |
//! | `fig5` | Figure 5 — arrival/departure timelines |
//! | `fig6a`..`fig6c` | Figure 6 — download time vs bundling strategy |
//! | `fig7` | Figure 7 — arrival patterns |
//! | `net-live` | E12 — sim-vs-live equivalence on the networked engine |
//! | `ablation-*` | A1–A6 from DESIGN.md |

pub mod ablations;
pub mod catalog_live;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod lab;
pub mod net_live;
pub mod output;
pub mod tables;

use output::Report;

/// All experiment ids, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "fig1",
    "catalog-live",
    "table-bundling",
    "table-books",
    "table-friends",
    "fig2",
    "fig3",
    "fig4",
    "table-bm",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig7",
    "net-live",
    "ablation-threshold",
    "ablation-lingering",
    "ablation-zipf",
    "ablation-publisher",
    "ablation-baseline",
    "ablation-service",
    "ablation-trace",
    "ablation-selection",
    "ablation-bias",
    "ablation-mixed",
    "ablation-partition",
];

/// Run one experiment by id. `quick` trades precision for speed.
pub fn run_experiment(id: &str, quick: bool) -> Option<Report> {
    Some(match id {
        "fig1" => fig1::run(quick),
        "catalog-live" => catalog_live::run(quick),
        "table-bundling" => tables::bundling_table(quick),
        "table-books" => tables::books_table(quick),
        "table-friends" => tables::friends_table(quick),
        "fig2" => fig2::run_fig(quick),
        "fig3" => fig3::run(quick),
        "fig4" => fig4::run(quick),
        "table-bm" => fig4::bm_table(quick),
        "fig5" => fig5::run(quick),
        "fig6a" => fig6::fig6a(quick),
        "fig6b" => fig6::fig6b(quick),
        "fig6c" => fig6::fig6c(quick),
        "fig7" => fig7::run(quick),
        "net-live" => net_live::run(quick),
        "ablation-threshold" => ablations::threshold_sensitivity(quick),
        "ablation-lingering" => ablations::lingering_ablation(quick),
        "ablation-zipf" => ablations::zipf_ablation(quick),
        "ablation-publisher" => ablations::publisher_ablation(quick),
        "ablation-baseline" => ablations::baseline_ablation(quick),
        "ablation-service" => ablations::service_ablation(quick),
        "ablation-trace" => ablations::trace_ablation(quick),
        "ablation-selection" => ablations::selection_ablation(quick),
        "ablation-bias" => ablations::bias_ablation(quick),
        "ablation-mixed" => ablations::mixed_ablation(quick),
        "ablation-partition" => ablations::partition_ablation(quick),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_dispatches() {
        // Only check dispatch resolution (not execution) for the heavy
        // ones; unknown ids must return None.
        assert!(run_experiment("nonexistent", true).is_none());
        for id in EXPERIMENTS {
            // run_experiment must resolve every id; actually running all
            // of them here would repeat the per-module tests, so just
            // check the cheap ones end-to-end.
            if ["fig2", "fig7", "table-bm", "ablation-zipf"].contains(id) {
                let r = run_experiment(id, true).expect("dispatch");
                assert_eq!(&r.id, id);
                assert!(!r.text.is_empty());
            }
        }
    }
}
