//! End-to-end tests of the `repro` binary: argument handling, exit
//! codes, manifest production, cache replay and fault isolation.

use std::path::PathBuf;
use std::process::{Command, Output};
use swarm_lab::{CacheDisposition, JobStatus, Manifest};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn no_args_and_unknown_ids_exit_2() {
    assert_eq!(repro(&[]).status.code(), Some(2));
    let out = repro(&["no-such-experiment", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment: no-such-experiment"));
    assert_eq!(repro(&["--bogus-flag"]).status.code(), Some(2));
    assert_eq!(repro(&["all", "--jobs", "0"]).status.code(), Some(2));
    assert_eq!(
        repro(&["all", "--force", "--no-cache"]).status.code(),
        Some(2)
    );
}

#[test]
fn list_prints_every_experiment() {
    let out = repro(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let listed: Vec<&str> = stdout.lines().collect();
    assert_eq!(listed, swarm_bench::EXPERIMENTS);
}

#[test]
fn all_composes_anywhere_and_ids_dedupe() {
    // `repro all fig1` used to reject `all`; now `all` expands in place
    // and the repeated explicit id dedupes — the dry-run plan proves it
    // without running the suite.
    let out = repro(&["all", "fig1", "--quick", "--dry-run"]);
    assert_eq!(out.status.code(), Some(0), "`all` must compose with ids");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let planned: Vec<&str> = stdout
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert_eq!(planned.len(), swarm_bench::EXPERIMENTS.len());
    assert_eq!(
        planned.iter().filter(|id| **id == "fig1").count(),
        1,
        "duplicate ids must collapse"
    );
    // `fig1 all` (id before `all`) parses identically.
    let out = repro(&["fig1", "all", "--quick", "--dry-run"]);
    assert_eq!(out.status.code(), Some(0));

    // Repeated explicit ids dedupe to a single job.
    let out = repro(&["fig2", "fig2", "fig2", "--quick", "--dry-run"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 1);
}

#[test]
fn runs_produce_manifest_and_cache_replays() {
    let dir = temp_out("cache");
    let out_flag = format!("--out={}", dir.display());

    let cold = repro(&["table-bm", "fig2", "--quick", &out_flag]);
    assert_eq!(cold.status.code(), Some(0), "healthy run exits 0");
    for f in ["table-bm.txt", "table-bm.json", "fig2.txt", "fig2.json"] {
        assert!(dir.join(f).exists(), "{f} written");
    }
    let manifest = Manifest::load(&dir.join("manifest.json")).expect("manifest");
    assert_eq!(manifest.jobs.len(), 2);
    assert!(manifest.all_ok());
    assert!(manifest
        .jobs
        .iter()
        .all(|j| j.cache == CacheDisposition::Miss));

    // Identical invocation: same binary, same quick flag → all hits.
    let warm = repro(&["table-bm", "fig2", "--quick", &out_flag]);
    assert_eq!(warm.status.code(), Some(0));
    let manifest = Manifest::load(&dir.join("manifest.json")).expect("manifest");
    assert!(
        manifest
            .jobs
            .iter()
            .all(|j| j.cache == CacheDisposition::Hit),
        "warm rerun must replay from cache: {manifest:?}"
    );

    // --force recomputes, --no-cache computes without touching entries.
    let forced = repro(&["table-bm", "--quick", "--force", &out_flag]);
    assert_eq!(forced.status.code(), Some(0));
    let manifest = Manifest::load(&dir.join("manifest.json")).expect("manifest");
    assert_eq!(manifest.jobs[0].cache, CacheDisposition::Refresh);
    let uncached = repro(&["table-bm", "--quick", "--no-cache", &out_flag]);
    assert_eq!(uncached.status.code(), Some(0));
    let manifest = Manifest::load(&dir.join("manifest.json")).expect("manifest");
    assert_eq!(manifest.jobs[0].cache, CacheDisposition::Off);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panic_fails_run_but_not_siblings() {
    let dir = temp_out("panic");
    let out_flag = format!("--out={}", dir.display());
    let out = repro(&[
        "table-bm",
        "inject-panic",
        "--quick",
        "--no-cache",
        &out_flag,
    ]);
    assert_eq!(out.status.code(), Some(1), "failed job must fail the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed: inject-panic"),
        "failure reported: {stderr}"
    );

    let manifest = Manifest::load(&dir.join("manifest.json")).expect("manifest");
    let by_id = |id: &str| {
        manifest
            .jobs
            .iter()
            .find(|j| j.id == id)
            .unwrap_or_else(|| panic!("{id} in manifest"))
    };
    assert_eq!(by_id("inject-panic").status, JobStatus::Failed);
    assert!(by_id("inject-panic")
        .error
        .as_deref()
        .expect("panic recorded")
        .contains("deliberate failure"));
    assert_eq!(by_id("table-bm").status, JobStatus::Ok);
    assert!(dir.join("table-bm.txt").exists(), "sibling still completed");
    let _ = std::fs::remove_dir_all(&dir);
}
