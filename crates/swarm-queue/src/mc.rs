//! Monte-Carlo M/G/∞ busy periods.
//!
//! Every closed form in [`crate::busy`] and [`crate::residual`] is validated
//! against this brute-force simulator: customers arrive Poisson(β), each
//! stays for an independently sampled residence time, and the busy period
//! ends when the population first drops to the configured threshold.

use crate::dist::ResidenceTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total order on f64 departure times for the event heap, via IEEE 754
/// `total_cmp`. Residence times are finite by construction, so the only
/// place `total_cmp` differs from the naive `partial_cmp` order (NaN,
/// signed zero) is never exercised — but the heap no longer needs a
/// panicking `expect` or a lint suppression to say so.
struct Departure(f64);

impl PartialEq for Departure {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for Departure {}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Configuration of one simulated busy period.
pub struct McConfig<'a> {
    /// Poisson arrival rate of customers during the busy period.
    pub beta: f64,
    /// Residence-time distribution of arriving customers.
    pub service: &'a dyn ResidenceTime,
    /// Residence times of the customers present at time zero (the busy
    /// period "initiators"). One entry per initial customer; each is a
    /// *remaining* residence time.
    pub initial: Vec<f64>,
    /// The busy period ends when the population first drops to this value.
    pub threshold: usize,
    /// Safety cap: abort (panic) if the busy period outlives this many
    /// simulated time units. Busy periods at bundle loads are `e^{Θ(K²)}`,
    /// so callers must bound the regime they simulate.
    pub max_time: f64,
}

/// Result of one simulated busy period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McBusyPeriod {
    /// Length of the busy period.
    pub length: f64,
    /// Number of customers served (arrived and departed) during it,
    /// including the initial customers.
    pub served: u64,
}

/// Simulate one busy period.
///
/// # Panics
/// If `initial.len() <= threshold` (the busy period would be over before it
/// starts) or the simulation exceeds `max_time`.
pub fn simulate_busy_period<R: rand::Rng>(cfg: &McConfig, rng: &mut R) -> McBusyPeriod {
    let mut departures = BinaryHeap::new();
    run_busy_period(cfg, &cfg.initial, &mut departures, rng)
}

/// The simulation kernel behind [`simulate_busy_period`]: one busy period
/// with the initial population given by `initial` (overriding
/// `cfg.initial`) and the event heap's storage borrowed from the caller.
/// The heap is cleared on entry, so [`mean_busy_period`] can allocate it
/// once and reuse its backing buffer across tens of thousands of
/// replications.
fn run_busy_period<R: rand::Rng>(
    cfg: &McConfig,
    initial: &[f64],
    departures: &mut BinaryHeap<Reverse<Departure>>,
    rng: &mut R,
) -> McBusyPeriod {
    assert!(
        initial.len() > cfg.threshold,
        "initial population {} must exceed threshold {}",
        initial.len(),
        cfg.threshold
    );
    assert!(
        cfg.beta >= 0.0 && cfg.beta.is_finite(),
        "beta must be nonnegative"
    );

    departures.clear();
    departures.extend(initial.iter().map(|&t| {
        assert!(
            t >= 0.0 && t.is_finite(),
            "initial residence must be finite"
        );
        Reverse(Departure(t))
    }));
    let mut now = 0.0_f64;
    let mut served = 0u64;
    let mut next_arrival = if cfg.beta > 0.0 {
        now + sample_exp(cfg.beta, rng)
    } else {
        f64::INFINITY
    };

    loop {
        let next_departure = departures
            .peek()
            .map(|d| d.0 .0)
            .expect("population above threshold implies pending departures");
        if next_arrival < next_departure {
            now = next_arrival;
            departures.push(Reverse(Departure(now + cfg.service.sample(rng))));
            next_arrival = now + sample_exp(cfg.beta, rng);
        } else {
            now = next_departure;
            departures.pop();
            served += 1;
            if departures.len() <= cfg.threshold {
                return McBusyPeriod {
                    length: now,
                    served,
                };
            }
        }
        assert!(
            now <= cfg.max_time,
            "busy period exceeded max_time={} (load too high to brute-force)",
            cfg.max_time
        );
    }
}

/// Mean busy period and mean customers served over `reps` replications.
///
/// `resample_initial` redraws the initial population for each
/// replication by pushing *remaining* residence times into the provided
/// buffer, which arrives empty; `cfg.initial` is ignored. The buffer and
/// the departure event heap are allocated once and their storage reused
/// across all replications, so the estimator's hot loop is
/// allocation-free regardless of `reps`.
///
/// With telemetry enabled the kernel reports its throughput and
/// convergence: counters `mc.reps` / `mc.served`, and ~8 `"mc.progress"`
/// events per call carrying samples/sec and the running 95% CI
/// half-width of the mean busy period. The instrumentation reads the
/// per-replication sums it keeps anyway and never touches the RNG.
pub fn mean_busy_period<R: rand::Rng>(
    cfg: &McConfig,
    reps: usize,
    mut resample_initial: impl FnMut(&mut Vec<f64>, &mut R),
    rng: &mut R,
) -> (f64, f64) {
    assert!(reps > 0, "need at least one replication");
    let _span = swarm_obs::span("mc.mean_busy_period");
    let obs = swarm_obs::enabled();
    let t0 = obs.then(std::time::Instant::now);
    let progress_every = (reps / 8).max(1);
    let mut sum_len = 0.0;
    let mut sum_len_sq = 0.0;
    let mut sum_served = 0.0;
    let mut initial = Vec::new();
    let mut departures = BinaryHeap::new();
    for i in 0..reps {
        initial.clear();
        resample_initial(&mut initial, rng);
        let r = run_busy_period(cfg, &initial, &mut departures, rng);
        sum_len += r.length;
        sum_len_sq += r.length * r.length;
        sum_served += r.served as f64;
        if obs && (i + 1) % progress_every == 0 {
            let done = (i + 1) as f64;
            let mean = sum_len / done;
            // Unbiased sample variance → 95% CI half-width of the mean.
            let half_width = if done > 1.0 {
                let var = (sum_len_sq - done * mean * mean) / (done - 1.0);
                1.96 * (var.max(0.0) / done).sqrt()
            } else {
                f64::INFINITY
            };
            let elapsed = t0.expect("clock started when obs on").elapsed();
            let rate = done / elapsed.as_secs_f64().max(1e-9);
            swarm_obs::emit(
                "mc.progress",
                &[
                    ("done", swarm_obs::val((i + 1) as u64)),
                    ("reps", swarm_obs::val(reps as u64)),
                    ("mean", swarm_obs::val(mean)),
                    ("ci_half_width", swarm_obs::val(half_width)),
                    ("samples_per_sec", swarm_obs::val(rate)),
                ],
            );
        }
    }
    if obs {
        swarm_obs::counter("mc.reps").add(reps as u64);
        swarm_obs::counter("mc.served").add(sum_served as u64);
    }
    (sum_len / reps as f64, sum_served / reps as f64)
}

fn sample_exp<R: rand::Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::busy::{classical_busy_period, exceptional_busy_period, TwoPhaseBusyPeriod};
    use crate::dist::{Exp, Mixture2, ResidenceTime};
    use crate::residual::{residual_busy_period, residual_busy_period_above};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const REPS: usize = 40_000;

    fn close(mc: f64, analytic: f64, rel: f64) {
        assert!(
            ((mc - analytic) / analytic).abs() < rel,
            "MC {mc} vs analytic {analytic} (rel err {:.4})",
            ((mc - analytic) / analytic).abs()
        );
    }

    #[test]
    fn mc_matches_classical_busy_period() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let (beta, alpha) = (0.4, 2.0);
        let service = Exp::new(alpha);
        let cfg = McConfig {
            beta,
            service: &service,
            initial: vec![],
            threshold: 0,
            max_time: 1e7,
        };
        let (mean, _) = mean_busy_period(
            &cfg,
            REPS,
            |buf, rng| buf.push(service.sample(rng)),
            &mut rng,
        );
        close(mean, classical_busy_period(beta, alpha), 0.03);
    }

    #[test]
    fn mc_matches_exceptional_initiator() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (beta, theta, alpha) = (0.3, 6.0, 2.0);
        let service = Exp::new(alpha);
        let initiator = Exp::new(theta);
        let cfg = McConfig {
            beta,
            service: &service,
            initial: vec![],
            threshold: 0,
            max_time: 1e7,
        };
        let (mean, _) = mean_busy_period(
            &cfg,
            REPS,
            |buf, rng| buf.push(initiator.sample(rng)),
            &mut rng,
        );
        close(mean, exceptional_busy_period(beta, &initiator, alpha), 0.03);
    }

    #[test]
    fn mc_matches_two_phase_mixture() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let p = TwoPhaseBusyPeriod {
            beta: 0.35,
            theta: 5.0,
            q1: 0.7,
            alpha1: 3.0,
            alpha2: 5.0,
        };
        let service = Mixture2::new(p.q1, Exp::new(p.alpha1), Exp::new(p.alpha2));
        let initiator = Exp::new(p.theta);
        let cfg = McConfig {
            beta: p.beta,
            service: &service,
            initial: vec![],
            threshold: 0,
            max_time: 1e7,
        };
        let (mean, _) = mean_busy_period(
            &cfg,
            REPS,
            |buf, rng| buf.push(initiator.sample(rng)),
            &mut rng,
        );
        close(mean, p.expected(), 0.03);
    }

    #[test]
    fn mc_matches_residual_busy_period() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let (lambda, alpha, n) = (0.3, 2.0, 4u64);
        let service = Exp::new(alpha);
        let cfg = McConfig {
            beta: lambda,
            service: &service,
            initial: vec![],
            threshold: 0,
            max_time: 1e7,
        };
        // Memorylessness: remaining residences of the n extant customers
        // are fresh exponentials.
        let (mean, _) = mean_busy_period(
            &cfg,
            REPS,
            |buf, rng| buf.extend((0..n).map(|_| service.sample(rng))),
            &mut rng,
        );
        close(mean, residual_busy_period(n, lambda, alpha), 0.03);
    }

    #[test]
    fn mc_matches_residual_with_threshold() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let (lambda, alpha, n, m) = (0.25, 2.0, 7u64, 3usize);
        let service = Exp::new(alpha);
        let cfg = McConfig {
            beta: lambda,
            service: &service,
            initial: vec![],
            threshold: m,
            max_time: 1e7,
        };
        let (mean, _) = mean_busy_period(
            &cfg,
            REPS,
            |buf, rng| buf.extend((0..n).map(|_| service.sample(rng))),
            &mut rng,
        );
        close(
            mean,
            residual_busy_period_above(n, m as u64, lambda, alpha),
            0.03,
        );
    }

    #[test]
    fn served_count_tracks_lambda_times_busy_period() {
        // E[N] = E[number served] ≈ 1 + β·E[B] for the classical case
        // (initiator plus Poisson arrivals over the busy period).
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let (beta, alpha) = (0.5, 1.5);
        let service = Exp::new(alpha);
        let cfg = McConfig {
            beta,
            service: &service,
            initial: vec![],
            threshold: 0,
            max_time: 1e7,
        };
        let (mean_len, mean_served) = mean_busy_period(
            &cfg,
            REPS,
            |buf, rng| buf.push(service.sample(rng)),
            &mut rng,
        );
        let expected_served = 1.0 + beta * mean_len;
        close(mean_served, expected_served, 0.03);
    }

    #[test]
    fn zero_beta_busy_period_is_initiator_residence() {
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let service = Exp::new(2.0);
        let cfg = McConfig {
            beta: 0.0,
            service: &service,
            initial: vec![3.25],
            threshold: 0,
            max_time: 1e6,
        };
        let r = simulate_busy_period(&cfg, &mut rng);
        assert_eq!(r.length, 3.25);
        assert_eq!(r.served, 1);
    }

    #[test]
    #[should_panic(expected = "must exceed threshold")]
    fn rejects_starting_below_threshold() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let service = Exp::new(1.0);
        let cfg = McConfig {
            beta: 0.1,
            service: &service,
            initial: vec![1.0],
            threshold: 1,
            max_time: 1e6,
        };
        simulate_busy_period(&cfg, &mut rng);
    }

    #[test]
    #[should_panic(expected = "exceeded max_time")]
    fn detects_runaway_busy_period() {
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        // Load βα = 40: busy period e^40/β, far beyond max_time.
        let service = Exp::new(4.0);
        let cfg = McConfig {
            beta: 10.0,
            service: &service,
            initial: vec![4.0],
            threshold: 0,
            max_time: 1e4,
        };
        simulate_busy_period(&cfg, &mut rng);
    }
}
