//! Busy-period distributions beyond the mean.
//!
//! The closed forms of [`crate::busy`] give expectations; the experiments
//! in the paper also reason about *variance* ("The large variance is due
//! to the variance in the downtime of the publisher", §4.3). This module
//! estimates full busy-period and customers-served distributions by
//! batched Monte-Carlo, with summary statistics and tail quantiles.

use crate::dist::ResidenceTime;
use crate::mc::{simulate_busy_period, McConfig};
use swarm_stats::{Samples, Summary};

/// Monte-Carlo estimate of the busy-period distribution.
#[derive(Debug, Clone)]
pub struct BusyPeriodDistribution {
    /// Sampled busy-period lengths.
    pub lengths: Samples,
    /// Sampled customers-served counts.
    pub served: Samples,
}

impl BusyPeriodDistribution {
    /// Summary of the lengths.
    pub fn length_summary(&self) -> Summary {
        self.lengths.summary()
    }

    /// Squared coefficient of variation of the busy period — the paper's
    /// variance story in one number (exponential ≈ 1, heavy-tailed ≫ 1).
    pub fn length_scv(&self) -> f64 {
        let s = self.lengths.summary();
        s.sample_variance() / (s.mean() * s.mean())
    }

    /// Tail quantile of the busy period.
    pub fn length_quantile(&mut self, q: f64) -> f64 {
        self.lengths.quantile(q)
    }
}

/// Sample `reps` busy periods, each initiated by one customer drawn from
/// `initiator`, with Poisson(β) arrivals served from `service`.
///
/// `max_time` guards against brute-forcing a regime whose busy periods
/// are effectively infinite (bundled swarms) — pick it a few orders above
/// the analytic mean.
pub fn sample_busy_periods<R: rand::Rng>(
    beta: f64,
    initiator: &dyn ResidenceTime,
    service: &dyn ResidenceTime,
    reps: usize,
    max_time: f64,
    rng: &mut R,
) -> BusyPeriodDistribution {
    assert!(reps > 0, "need at least one sample");
    let mut lengths = Samples::new();
    let mut served = Samples::new();
    for _ in 0..reps {
        let cfg = McConfig {
            beta,
            service,
            initial: vec![initiator.sample(rng)],
            threshold: 0,
            max_time,
        };
        let r = simulate_busy_period(&cfg, rng);
        lengths.add(r.length);
        served.add(r.served as f64);
    }
    BusyPeriodDistribution { lengths, served }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::busy::classical_busy_period;
    use crate::dist::Exp;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sampled_mean_matches_closed_form() {
        let (beta, alpha) = (0.3, 2.0);
        let e = Exp::new(alpha);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let dist = sample_busy_periods(beta, &e, &e, 30_000, 1e7, &mut rng);
        let analytic = classical_busy_period(beta, alpha);
        let mc = dist.length_summary().mean();
        assert!(
            ((mc - analytic) / analytic).abs() < 0.05,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn busy_periods_are_heavier_than_exponential() {
        // Busy periods at moderate load are more variable than an
        // exponential of the same mean (SCV > 1): the long ones snowball.
        let (beta, alpha) = (0.4, 2.0);
        let e = Exp::new(alpha);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dist = sample_busy_periods(beta, &e, &e, 30_000, 1e7, &mut rng);
        assert!(
            dist.length_scv() > 1.0,
            "busy periods should be over-dispersed, SCV = {}",
            dist.length_scv()
        );
    }

    #[test]
    fn served_counts_track_lengths() {
        // E[N] = 1 + β·E[B]: served counts and lengths must co-move.
        let (beta, alpha) = (0.35, 1.5);
        let e = Exp::new(alpha);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dist = sample_busy_periods(beta, &e, &e, 30_000, 1e7, &mut rng);
        let mean_len = dist.lengths.summary().mean();
        let mean_served = dist.served.summary().mean();
        let expected = 1.0 + beta * mean_len;
        assert!(
            ((mean_served - expected) / expected).abs() < 0.02,
            "served {mean_served} vs 1 + beta*E[B] = {expected}"
        );
    }

    #[test]
    fn tail_quantiles_ordered() {
        let (beta, alpha) = (0.2, 1.0);
        let e = Exp::new(alpha);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut dist = sample_busy_periods(beta, &e, &e, 5_000, 1e7, &mut rng);
        let p50 = dist.length_quantile(0.5);
        let p90 = dist.length_quantile(0.9);
        let p99 = dist.length_quantile(0.99);
        assert!(p50 < p90 && p90 < p99);
        // Median below mean for a right-skewed distribution.
        assert!(p50 < dist.length_summary().mean());
    }
}
