//! Numerical kernel: ln-factorials, log-sum-exp accumulation and convergent
//! series summation.
//!
//! The busy-period formulas of the paper (eqs. 9, 12, 18, 19) are infinite
//! series whose terms contain `β^i / i!`. For bundled swarms the effective
//! load `βα ≈ K²λs/μ` reaches the hundreds, so individual terms — and the
//! sums — overflow `f64`. Every series in this crate is therefore also
//! evaluated in the log domain with the tools here.

/// Natural log of `n!` via `ln Γ(n+1)`.
///
/// Exact table for small `n`, Stirling series beyond it; absolute error is
/// below 1e-12 for all `n`, far tighter than the series truncation error.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact for n <= 20 (fits in f64 integer range).
    const EXACT: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362880.0,
        3628800.0,
        39916800.0,
        479001600.0,
        6227020800.0,
        87178291200.0,
        1307674368000.0,
        20922789888000.0,
        355687428096000.0,
        6402373705728000.0,
        121645100408832000.0,
        2432902008176640000.0,
    ];
    if n <= 20 {
        return EXACT[n as usize].ln();
    }
    // Stirling's series for ln Γ(x) at x = n + 1.
    let x = (n + 1) as f64;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    (x - 0.5) * x.ln() - x
        + 0.5 * (2.0 * std::f64::consts::PI).ln()
        + inv * (1.0 / 12.0 - inv2 * (1.0 / 360.0 - inv2 * (1.0 / 1260.0 - inv2 / 1680.0)))
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial requires k <= n, got C({n},{k})");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of the Poisson pmf `e^{-x} x^i / i!`.
///
/// Returns `-inf` for `x == 0, i > 0`.
pub fn ln_poisson_pmf(x: f64, i: u64) -> f64 {
    assert!(x >= 0.0, "Poisson mean must be nonnegative, got {x}");
    if x == 0.0 {
        return if i == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    -x + i as f64 * x.ln() - ln_factorial(i)
}

/// Streaming log-sum-exp accumulator: maintains `ln Σ e^{t_k}` over terms
/// added as logs, without ever materializing the linear-domain sum.
#[derive(Debug, Clone, Copy)]
pub struct LogSumExp {
    /// Running maximum of the log-terms.
    max: f64,
    /// `Σ e^{t_k - max}`.
    scaled_sum: f64,
}

impl Default for LogSumExp {
    fn default() -> Self {
        Self::new()
    }
}

impl LogSumExp {
    /// An empty accumulator (`ln 0 = -inf`).
    pub fn new() -> Self {
        LogSumExp {
            max: f64::NEG_INFINITY,
            scaled_sum: 0.0,
        }
    }

    /// Add a term given as its natural log. `-inf` terms are no-ops.
    pub fn add_ln(&mut self, ln_term: f64) {
        if ln_term == f64::NEG_INFINITY {
            return;
        }
        debug_assert!(!ln_term.is_nan(), "NaN log-term");
        if ln_term > self.max {
            // Rescale the existing sum to the new maximum.
            self.scaled_sum = self.scaled_sum * (self.max - ln_term).exp() + 1.0;
            self.max = ln_term;
        } else {
            self.scaled_sum += (ln_term - self.max).exp();
        }
    }

    /// `ln Σ e^{t_k}` so far; `-inf` when empty.
    pub fn ln_sum(&self) -> f64 {
        if self.max == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.max + self.scaled_sum.ln()
        }
    }
}

/// `ln(e^a - e^b)` for `a >= b`, computed without overflow.
///
/// Returns `-inf` when `a == b`.
///
/// # Panics
/// If `a < b` (the difference would be negative, which has no log).
pub fn ln_sub_exp(a: f64, b: f64) -> f64 {
    assert!(
        a >= b,
        "ln_sub_exp requires a >= b, got a={a}, b={b} (negative difference)"
    );
    if b == f64::NEG_INFINITY {
        return a;
    }
    // ln(e^a - e^b) = a + ln(1 - e^{b-a})
    a + (-(b - a).exp()).ln_1p()
}

/// `ln(e^a + e^b)` computed without overflow.
pub fn ln_add_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// Kahan-compensated summation accumulator for linear-domain series.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term with compensation.
    pub fn add(&mut self, x: f64) {
        let y = x - self.comp;
        let t = self.sum + y;
        self.comp = (t - self.sum) - y;
        self.sum = t;
    }

    /// Current compensated sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Controls for series truncation.
#[derive(Debug, Clone, Copy)]
pub struct SeriesControl {
    /// Stop once a term is smaller than `rel_tol` times the accumulated sum
    /// (in the log domain: once `ln term < ln sum + ln rel_tol`) *and* the
    /// terms are decreasing.
    pub rel_tol: f64,
    /// Hard cap on the number of terms; exceeding it panics, since it means
    /// the series was driven far outside its intended regime.
    pub max_terms: usize,
}

impl Default for SeriesControl {
    fn default() -> Self {
        SeriesControl {
            rel_tol: 1e-14,
            max_terms: 200_000,
        }
    }
}

/// Sum a positive series given term logs, in the log domain.
///
/// `ln_term(i)` must return the natural log of the `i`-th term (`i >= 1`).
/// Terms may first grow (they do: `β^i/i!` peaks near `i = β·α`) and then
/// decay; summation stops when a term falls below `rel_tol` relative to the
/// running sum *after* the terms have started decreasing.
///
/// Returns `ln Σ_{i>=1} term(i)`.
pub fn ln_sum_series(mut ln_term: impl FnMut(u64) -> f64, ctl: SeriesControl) -> f64 {
    let mut acc = LogSumExp::new();
    let mut prev = f64::NEG_INFINITY;
    let mut decreasing = false;
    for i in 1..=(ctl.max_terms as u64) {
        let t = ln_term(i);
        debug_assert!(!t.is_nan(), "series term {i} is NaN");
        acc.add_ln(t);
        if t < prev {
            decreasing = true;
        }
        if decreasing && t < acc.ln_sum() + ctl.rel_tol.ln() {
            return acc.ln_sum();
        }
        prev = t;
    }
    panic!(
        "series did not converge within {} terms (last ln-term {prev:.3})",
        ctl.max_terms
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(20) - 2432902008176640000f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_factorial_stirling_continuity() {
        // Stirling branch should agree with the recurrence ln(n!) = ln n + ln((n-1)!)
        let direct = ln_factorial(21);
        let recur = (21f64).ln() + ln_factorial(20);
        assert!((direct - recur).abs() < 1e-10);
        let direct = ln_factorial(1000);
        let recur = (1000f64).ln() + ln_factorial(999);
        assert!((direct - recur).abs() < 1e-9);
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 5) - 252f64.ln()).abs() < 1e-12);
        assert_eq!(ln_binomial(7, 0), 0.0);
        assert_eq!(ln_binomial(7, 7), 0.0);
    }

    #[test]
    fn ln_poisson_pmf_sums_to_one() {
        let x = 7.3;
        let mut acc = LogSumExp::new();
        for i in 0..200 {
            acc.add_ln(ln_poisson_pmf(x, i));
        }
        assert!(acc.ln_sum().abs() < 1e-12);
    }

    #[test]
    fn ln_poisson_pmf_zero_mean() {
        assert_eq!(ln_poisson_pmf(0.0, 0), 0.0);
        assert_eq!(ln_poisson_pmf(0.0, 3), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_matches_direct() {
        let terms = [1.0, 2.5, -3.0, 0.0];
        let mut acc = LogSumExp::new();
        for &t in &terms {
            acc.add_ln(t);
        }
        let direct: f64 = terms.iter().map(|t| t.exp()).sum();
        assert!((acc.ln_sum() - direct.ln()).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_huge_terms() {
        let mut acc = LogSumExp::new();
        acc.add_ln(1000.0); // e^1000 overflows f64
        acc.add_ln(1000.0);
        assert!((acc.ln_sum() - (1000.0 + 2f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_empty() {
        assert_eq!(LogSumExp::new().ln_sum(), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_sub_exp_basic() {
        let v = ln_sub_exp(3f64.ln(), 1f64.ln());
        assert!((v - 2f64.ln()).abs() < 1e-12);
        assert_eq!(ln_sub_exp(5.0, f64::NEG_INFINITY), 5.0);
        assert_eq!(ln_sub_exp(2.0, 2.0), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "requires a >= b")]
    fn ln_sub_exp_rejects_negative_difference() {
        ln_sub_exp(1.0, 2.0);
    }

    #[test]
    fn ln_add_exp_basic() {
        let v = ln_add_exp(3f64.ln(), 1f64.ln());
        assert!((v - 4f64.ln()).abs() < 1e-12);
        assert_eq!(
            ln_add_exp(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
        assert_eq!(ln_add_exp(f64::NEG_INFINITY, 7.0), 7.0);
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_input() {
        let mut k = Kahan::new();
        k.add(1e16);
        for _ in 0..10 {
            k.add(1.0);
        }
        k.add(-1e16);
        assert_eq!(k.sum(), 10.0);
    }

    #[test]
    fn ln_sum_series_exponential() {
        // Σ_{i>=1} x^i / i! = e^x - 1
        let x: f64 = 5.0;
        let ln = ln_sum_series(
            |i| i as f64 * x.ln() - ln_factorial(i),
            SeriesControl::default(),
        );
        assert!((ln.exp() - (x.exp() - 1.0)).abs() / (x.exp() - 1.0) < 1e-12);
    }

    #[test]
    fn ln_sum_series_large_argument_stays_finite() {
        // x = 700 would overflow in the linear domain; ln(e^x - 1) ≈ x.
        let x: f64 = 700.0;
        let ln = ln_sum_series(
            |i| i as f64 * x.ln() - ln_factorial(i),
            SeriesControl::default(),
        );
        assert!((ln - x).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn ln_sum_series_detects_divergence() {
        // Harmonic-like slow decay with growing terms never satisfies the cap.
        ln_sum_series(
            |i| i as f64, // e^i grows forever
            SeriesControl {
                rel_tol: 1e-14,
                max_terms: 100,
            },
        );
    }
}
