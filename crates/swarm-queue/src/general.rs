//! Generalized exceptional-initiator busy period for residence times whose
//! integrated tail is a signed mixture of exponentials.
//!
//! The paper's technical report parameterizes "a general version of
//! eq. (9)" to handle *altruistic lingering* (§3.3.4), where a peer's
//! residence is download time **plus** an exponential lingering time — a
//! hypoexponential, which is not one of eq. (9)'s two exponential phases.
//!
//! We reconstruct that generalization from Browne & Steele's eq. (17):
//!
//! `E[B] = θ + Σ_{i≥1} (βⁱ/i!) ∫₀^∞ (1−H(x)) [∫ₓ^∞ (1−G(u)) du]ⁱ dx`
//!
//! If the integrated tail of `G` is `∫ₓ^∞ (1−G) du = Σ_j c_j e^{−d_j x}`
//! (true for any phase-type-ish mixture, with possibly *negative* `c_j`)
//! and the initiator is exponential with mean `θ`, the bracket expands
//! multinomially and each term integrates in closed form:
//!
//! `E[B] = θ + Σ_{i≥1} (βⁱ/i!) Σ_{|k|=i} (i; k) Π_j c_j^{k_j} · θ/(1 + θ·k·d)`
//!
//! Because the `c_j` may be signed, this is evaluated in the *linear*
//! domain with compensated summation and an absolute-convergence stopping
//! rule — fine for the moderate loads where lingering analysis operates,
//! and asserted against overflow.

use crate::series::Kahan;
use serde::{Deserialize, Serialize};

/// One exponential component `c · e^{−d x}` of an integrated tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailComponent {
    /// Coefficient (may be negative for hypoexponential residences).
    pub c: f64,
    /// Decay rate (must be positive).
    pub d: f64,
}

/// Integrated tail `∫ₓ^∞ (1−G(u)) du` of a residence-time distribution,
/// represented as a signed mixture of exponentials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegratedTail {
    components: Vec<TailComponent>,
}

impl IntegratedTail {
    /// Build from components. The value at `x = 0` must equal the mean of
    /// `G` and the function must be nonnegative; both are spot-checked.
    pub fn new(components: Vec<TailComponent>) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        for c in &components {
            assert!(
                c.d > 0.0 && c.d.is_finite() && c.c.is_finite(),
                "bad tail component {c:?}"
            );
        }
        let tail = IntegratedTail { components };
        // The integrated tail is nonincreasing from mean to 0; sample a few
        // points to catch sign errors in caller-supplied coefficients.
        let mean = tail.eval(0.0);
        assert!(
            mean > 0.0,
            "integrated tail at 0 must be the (positive) mean"
        );
        for i in 1..=8 {
            let x = mean * i as f64;
            let v = tail.eval(x);
            assert!(v >= -1e-9 * mean, "integrated tail negative at x={x}: {v}");
        }
        tail
    }

    /// Integrated tail of an exponential residence with the given mean:
    /// `m e^{−x/m}`.
    pub fn exponential(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite());
        IntegratedTail {
            components: vec![TailComponent {
                c: mean,
                d: 1.0 / mean,
            }],
        }
    }

    /// Integrated tail of a hypoexponential (sum of two independent
    /// exponentials with distinct rates `a ≠ b`):
    /// survival `S(t) = (b e^{−at} − a e^{−bt})/(b−a)`, so
    /// `∫ₓ^∞ S = (b/a · e^{−ax} − a/b · e^{−bx})/(b−a)`.
    ///
    /// # Panics
    /// If the rates are equal (degenerate representation); perturb one of
    /// them by a relative epsilon in that case.
    pub fn hypoexp2(mean1: f64, mean2: f64) -> Self {
        assert!(mean1 > 0.0 && mean2 > 0.0, "means must be positive");
        let (a, b) = (1.0 / mean1, 1.0 / mean2);
        assert!(
            (a - b).abs() > 1e-9 * a.max(b),
            "hypoexp2 requires distinct rates; perturb one mean slightly"
        );
        IntegratedTail {
            components: vec![
                TailComponent {
                    c: b / (a * (b - a)),
                    d: a,
                },
                TailComponent {
                    c: -a / (b * (b - a)),
                    d: b,
                },
            ],
        }
    }

    /// Mixture of two integrated tails with weight `q1` on the first
    /// (mixtures of distributions mix their integrated tails linearly).
    pub fn mix(q1: f64, t1: &IntegratedTail, t2: &IntegratedTail) -> Self {
        assert!((0.0..=1.0).contains(&q1), "mixture weight in [0,1]");
        let mut components = Vec::new();
        for c in &t1.components {
            if q1 > 0.0 {
                components.push(TailComponent {
                    c: q1 * c.c,
                    d: c.d,
                });
            }
        }
        for c in &t2.components {
            if q1 < 1.0 {
                components.push(TailComponent {
                    c: (1.0 - q1) * c.c,
                    d: c.d,
                });
            }
        }
        IntegratedTail { components }
    }

    /// Evaluate `Σ_j c_j e^{−d_j x}`.
    pub fn eval(&self, x: f64) -> f64 {
        self.components.iter().map(|t| t.c * (-t.d * x).exp()).sum()
    }

    /// Mean of the underlying distribution (`eval(0)`).
    pub fn mean(&self) -> f64 {
        self.components.iter().map(|t| t.c).sum()
    }
}

/// Expected busy period with exponential initiator (mean `theta`), Poisson
/// arrivals at rate `beta`, and subsequent residences described by `tail`.
///
/// Linear-domain evaluation; panics (rather than silently saturating) if the
/// series fails to converge within `max_terms` — use the specialized
/// log-domain forms in [`crate::busy`] for extreme (bundled) loads.
pub fn general_busy_period(beta: f64, theta: f64, tail: &IntegratedTail) -> f64 {
    assert!(beta > 0.0 && beta.is_finite(), "beta must be positive");
    assert!(theta > 0.0 && theta.is_finite(), "theta must be positive");

    let comps = &tail.components;
    let j_count = comps.len();
    let mut total = Kahan::new();
    total.add(theta);

    // Absolute-value bound on the bracket drives the convergence check.
    let abs_at_zero: f64 = comps.iter().map(|c| c.c.abs()).sum();
    let max_terms = 2_000usize;

    let mut beta_pow_over_fact = 1.0; // β^i / i!
    let mut abs_tail_bound_prev = f64::INFINITY;
    for i in 1..=max_terms {
        beta_pow_over_fact *= beta / i as f64;

        // Enumerate compositions k of i over the J components.
        let mut inner = Kahan::new();
        let mut k = vec![0usize; j_count];
        compositions(i, 0, &mut k, &mut |k| {
            // multinomial coefficient i! / Π k_j!
            let mut coef = 1.0f64;
            {
                // Compute i!/(k1!..kJ!) incrementally via ln to avoid
                // overflow for large i.
                let mut ln = crate::series::ln_factorial(i as u64);
                for &kj in k.iter() {
                    ln -= crate::series::ln_factorial(kj as u64);
                }
                coef *= ln.exp();
            }
            let mut prod = 1.0f64;
            let mut kd = 0.0f64;
            for (j, &kj) in k.iter().enumerate() {
                if kj > 0 {
                    prod *= comps[j].c.powi(kj as i32);
                    kd += kj as f64 * comps[j].d;
                }
            }
            inner.add(coef * prod * theta / (1.0 + theta * kd));
        });

        let term = beta_pow_over_fact * inner.sum();
        total.add(term);

        // Absolute convergence: |term_i| ≤ (β·Σ|c|)^i / i! · θ, which
        // eventually decays factorially. Stop once the bound is tiny
        // relative to the accumulated sum and decreasing.
        let abs_bound = beta_pow_over_fact * abs_at_zero.powi(i as i32) * theta;
        if abs_bound < abs_tail_bound_prev && abs_bound < 1e-13 * total.sum().abs() {
            return total.sum();
        }
        abs_tail_bound_prev = abs_bound;
    }
    panic!(
        "general_busy_period did not converge within {max_terms} terms (βΣ|c| = {:.2})",
        beta * abs_at_zero
    );
}

/// Enumerate all compositions of `n` into `k.len() - start` parts, writing
/// into `k[start..]` and invoking `f` for each complete composition.
fn compositions(n: usize, start: usize, k: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
    if start == k.len() - 1 {
        k[start] = n;
        f(k);
        return;
    }
    for v in 0..=n {
        k[start] = v;
        compositions(n - v, start + 1, k, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::busy::{classical_busy_period, TwoPhaseBusyPeriod};

    #[test]
    fn integrated_tail_exponential_mean() {
        let t = IntegratedTail::exponential(3.0);
        assert!((t.mean() - 3.0).abs() < 1e-12);
        assert!((t.eval(3.0) - 3.0 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn integrated_tail_hypoexp_mean_is_sum() {
        let t = IntegratedTail::hypoexp2(2.0, 5.0);
        assert!((t.mean() - 7.0).abs() < 1e-9);
        // Nonnegative and decreasing.
        let mut prev = t.eval(0.0);
        for i in 1..20 {
            let v = t.eval(i as f64);
            assert!(v >= -1e-12 && v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "distinct rates")]
    fn hypoexp_rejects_equal_rates() {
        IntegratedTail::hypoexp2(2.0, 2.0);
    }

    #[test]
    fn mix_means_combine_linearly() {
        let a = IntegratedTail::exponential(2.0);
        let b = IntegratedTail::exponential(10.0);
        let m = IntegratedTail::mix(0.25, &a, &b);
        assert!((m.mean() - (0.25 * 2.0 + 0.75 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn general_reduces_to_classical() {
        // All-exponential residences with θ = α: eq (20).
        let (beta, alpha) = (0.3, 4.0);
        let tail = IntegratedTail::exponential(alpha);
        let b = general_busy_period(beta, alpha, &tail);
        let expect = classical_busy_period(beta, alpha);
        assert!(((b - expect) / expect).abs() < 1e-9, "{b} vs {expect}");
    }

    #[test]
    fn general_reduces_to_eq9_two_phase() {
        let p = TwoPhaseBusyPeriod {
            beta: 0.25,
            theta: 6.0,
            q1: 0.6,
            alpha1: 3.0,
            alpha2: 6.0,
        };
        let tail = IntegratedTail::mix(
            p.q1,
            &IntegratedTail::exponential(p.alpha1),
            &IntegratedTail::exponential(p.alpha2),
        );
        let b = general_busy_period(p.beta, p.theta, &tail);
        let expect = p.expected();
        assert!(((b - expect) / expect).abs() < 1e-9, "{b} vs {expect}");
    }

    #[test]
    fn lingering_extends_busy_period() {
        // Peers that linger (residence = download + lingering) hold the
        // swarm open longer than peers that leave immediately.
        let beta = 0.3;
        let theta = 5.0;
        let no_linger = IntegratedTail::mix(
            0.8,
            &IntegratedTail::exponential(3.0),
            &IntegratedTail::exponential(theta),
        );
        let linger = IntegratedTail::mix(
            0.8,
            &IntegratedTail::hypoexp2(3.0, 2.0),
            &IntegratedTail::exponential(theta),
        );
        let b0 = general_busy_period(beta, theta, &no_linger);
        let b1 = general_busy_period(beta, theta, &linger);
        assert!(
            b1 > b0,
            "lingering must lengthen the busy period: {b1} vs {b0}"
        );
    }

    #[test]
    fn general_matches_monte_carlo_for_hypoexp_service() {
        use crate::dist::{Exp, ResidenceTime};
        use crate::mc::{mean_busy_period, McConfig};
        use rand::SeedableRng;

        // Residences: hypoexp(2,1) w.p. 0.7, else Exp(4); initiator Exp(4).
        struct HypoMix;
        impl ResidenceTime for HypoMix {
            fn mean(&self) -> f64 {
                0.7 * 3.0 + 0.3 * 4.0
            }
            fn laplace(&self, _s: f64) -> f64 {
                unimplemented!("not needed for sampling")
            }
            fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
                let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(rng.next_u64());
                use rand::Rng as _;
                if r.gen::<f64>() < 0.7 {
                    let e1 = Exp::new(2.0);
                    let e2 = Exp::new(1.0);
                    e1.sample(&mut r) + e2.sample(&mut r)
                } else {
                    Exp::new(4.0).sample(&mut r)
                }
            }
        }

        let beta = 0.3;
        let theta = 4.0;
        let tail = IntegratedTail::mix(
            0.7,
            &IntegratedTail::hypoexp2(2.0, 1.0),
            &IntegratedTail::exponential(4.0),
        );
        let analytic = general_busy_period(beta, theta, &tail);

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let service = HypoMix;
        let initiator = Exp::new(theta);
        let cfg = McConfig {
            beta,
            service: &service,
            initial: vec![],
            threshold: 0,
            max_time: 1e7,
        };
        let (mc, _) = mean_busy_period(
            &cfg,
            30_000,
            |buf, rng| buf.push(initiator.sample(rng)),
            &mut rng,
        );
        assert!(
            ((mc - analytic) / analytic).abs() < 0.04,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn compositions_enumerate_all() {
        let mut seen = Vec::new();
        let mut k = vec![0usize; 3];
        compositions(4, 0, &mut k, &mut |k| seen.push(k.to_vec()));
        // C(4+2, 2) = 15 compositions of 4 into 3 parts.
        assert_eq!(seen.len(), 15);
        assert!(seen.iter().all(|k| k.iter().sum::<usize>() == 4));
        // all distinct
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }
}
