//! Residual busy periods with a coverage threshold (paper §3.3.3).
//!
//! When the last publisher leaves, the swarm keeps the content alive as
//! long as enough peers remain online. Lemma 3.3 models the remaining
//! lifetime as a *residual* busy period of the M/G/∞ queue: it starts with
//! `n` extant customers and ends when the population drops to `m`.
//!
//! By memorylessness the `n` extant exponential customers are equivalent to
//! a single virtual initiator whose residence is `max(X₁, …, Xₙ)` — a
//! hypoexponential with stage means `(α, α/2, …, α/n)` — so `B(n, 0)`
//! follows from the exceptional-initiator formula (eq. 18), giving eq. (12):
//!
//! `B(n,0) = Σ_{i=1}^{n} α/i + α Σ_{i≥1} x^i [(n+i)! − n!·i!] / (i!·(n+i)!·i)`
//!
//! with `x = λα`. For `m < n`, `B(n,m) = B(n,0) − B(m,0)` (Lemma 3.3), and
//! the steady-state mixture over the Poisson(λα) population gives eq. (13).

use crate::series::{ln_factorial, ln_sub_exp, ln_sum_series, LogSumExp, SeriesControl};

fn check_rate(name: &str, v: f64) {
    assert!(
        v > 0.0 && v.is_finite(),
        "{name} must be positive and finite, got {v}"
    );
}

/// `ln B(n, 0)` — log of the expected residual busy period started by `n`
/// extant customers, ending at population 0 (paper eq. 12).
///
/// `lambda` is the Poisson arrival rate and `alpha` the mean (exponential)
/// residence time of every customer. `B(0,0) = 0` (log = `-inf`).
pub fn ln_residual_busy_period(n: u64, lambda: f64, alpha: f64) -> f64 {
    check_rate("lambda", lambda);
    check_rate("alpha", alpha);
    if n == 0 {
        return f64::NEG_INFINITY;
    }
    let x = lambda * alpha;
    // Harmonic head: α Σ_{i=1}^{n} 1/i = E[max of n exponentials].
    let head = alpha * (1..=n).map(|i| 1.0 / i as f64).sum::<f64>();

    // Series tail: α Σ_{i≥1} x^i [1/(i!·i) − n!/((n+i)!·i)].
    // Both parts are positive and the bracket is in (0, 1/(i!·i)); compute
    // it as ln-difference to stay exact for large x.
    let ln_n_fact = ln_factorial(n);
    let ln_x = x.ln();
    let ln_tail = ln_sum_series(
        |i| {
            let a = i as f64 * ln_x - ln_factorial(i) - (i as f64).ln();
            let b = i as f64 * ln_x + ln_n_fact - ln_factorial(n + i) - (i as f64).ln();
            // a >= b because (n+i)! >= n!·i!.
            alpha.ln() + ln_sub_exp(a, b)
        },
        SeriesControl::default(),
    );
    crate::series::ln_add_exp(head.ln(), ln_tail)
}

/// `B(n, 0)` in the linear domain (may be `+inf` at extreme loads).
pub fn residual_busy_period(n: u64, lambda: f64, alpha: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    ln_residual_busy_period(n, lambda, alpha).exp()
}

/// `B(n, m)` — expected time for a residual busy period starting at
/// population `n` to first reach population `m < n` (Lemma 3.3 recursion
/// `B(n,m) = B(n,0) − B(m,0)`). Returns 0 when `n <= m`.
pub fn residual_busy_period_above(n: u64, m: u64, lambda: f64, alpha: f64) -> f64 {
    if n <= m {
        return 0.0;
    }
    let ln_n = ln_residual_busy_period(n, lambda, alpha);
    if m == 0 {
        return ln_n.exp();
    }
    let ln_m = ln_residual_busy_period(m, lambda, alpha);
    // B(n,0) > B(m,0) for n > m; guard against rounding inversion anyway.
    if ln_n <= ln_m {
        return 0.0;
    }
    ln_sub_exp(ln_n, ln_m).exp()
}

/// `B(m)` — paper eq. (13): the expected residual busy period when Phase 2
/// begins with the peer population in steady state (Poisson with mean
/// `λα`), truncated at coverage threshold `m`:
///
/// `B(m) = Σ_{i≥0} e^{−λα} (λα)^i / i! · B(i, m)`
pub fn poisson_mixture_residual(m: u64, lambda: f64, alpha: f64) -> f64 {
    check_rate("lambda", lambda);
    check_rate("alpha", alpha);
    let x = lambda * alpha;
    // Truncate the Poisson mixture once the remaining tail mass cannot
    // matter: B(i,m) grows only logarithmically in i (harmonic head) while
    // the pmf decays super-exponentially past its mean.
    let i_max = (x + 12.0 * x.sqrt() + 60.0).ceil() as u64;
    let mut acc = LogSumExp::new();
    for i in (m + 1)..=i_max {
        let ln_b = {
            let ln_i = ln_residual_busy_period(i, lambda, alpha);
            if m == 0 {
                ln_i
            } else {
                let ln_m = ln_residual_busy_period(m, lambda, alpha);
                if ln_i <= ln_m {
                    continue;
                }
                ln_sub_exp(ln_i, ln_m)
            }
        };
        acc.add_ln(crate::series::ln_poisson_pmf(x, i) + ln_b);
    }
    acc.ln_sum().exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::busy::classical_busy_period;
    use crate::dist::MaxOfExponentials;

    #[test]
    fn b_zero_is_zero() {
        assert_eq!(residual_busy_period(0, 0.1, 2.0), 0.0);
    }

    #[test]
    fn b_one_matches_classical_busy_period() {
        // A residual busy period started by a single fresh exponential
        // customer is the ordinary busy period: (e^{λα} − 1)/λ.
        for &(lambda, alpha) in &[(0.1, 2.0), (0.5, 1.0), (0.05, 10.0)] {
            let b = residual_busy_period(1, lambda, alpha);
            let classical = classical_busy_period(lambda, alpha);
            assert!(
                ((b - classical) / classical).abs() < 1e-10,
                "λ={lambda} α={alpha}: {b} vs {classical}"
            );
        }
    }

    #[test]
    fn eq12_matches_eq18_with_max_initiator() {
        // Lemma 3.3's derivation: eq (12) is eq (18) with the
        // max-of-exponentials initiator. The two routes must agree.
        let (lambda, alpha) = (0.2, 3.0);
        for n in 1..=8u64 {
            let via_eq12 = residual_busy_period(n, lambda, alpha);
            let via_eq18 = crate::busy::exceptional_busy_period(
                lambda,
                &MaxOfExponentials::new(n, alpha),
                alpha,
            );
            assert!(
                ((via_eq12 - via_eq18) / via_eq18).abs() < 1e-9,
                "n={n}: eq12={via_eq12} eq18={via_eq18}"
            );
        }
    }

    #[test]
    fn residual_is_increasing_in_n() {
        let (lambda, alpha) = (0.3, 2.0);
        let mut prev = 0.0;
        for n in 1..=10 {
            let b = residual_busy_period(n, lambda, alpha);
            assert!(b > prev, "B({n},0)={b} <= B({},0)={prev}", n - 1);
            prev = b;
        }
    }

    #[test]
    fn above_threshold_is_difference() {
        let (lambda, alpha) = (0.2, 2.5);
        let b52 = residual_busy_period_above(5, 2, lambda, alpha);
        let b50 = residual_busy_period(5, lambda, alpha);
        let b20 = residual_busy_period(2, lambda, alpha);
        assert!(((b52 - (b50 - b20)) / b52).abs() < 1e-9);
    }

    #[test]
    fn above_threshold_zero_when_n_below_m() {
        assert_eq!(residual_busy_period_above(3, 5, 0.1, 1.0), 0.0);
        assert_eq!(residual_busy_period_above(5, 5, 0.1, 1.0), 0.0);
    }

    #[test]
    fn chain_rule_of_thresholds() {
        // T(n→l) = T(n→k) + T(k→l) for n > k > l (proof of Lemma 3.3).
        let (lambda, alpha) = (0.15, 3.0);
        let direct = residual_busy_period_above(8, 2, lambda, alpha);
        let chained = residual_busy_period_above(8, 5, lambda, alpha)
            + residual_busy_period_above(5, 2, lambda, alpha);
        assert!(((direct - chained) / direct).abs() < 1e-9);
    }

    #[test]
    fn poisson_mixture_zero_when_population_below_threshold() {
        // Load so small the steady-state population almost never exceeds m:
        // B(m) ≈ 0.
        let b = poisson_mixture_residual(9, 1.0 / 150.0, 121.2);
        assert!(b < 1.0, "B(9) = {b} should be negligible at load 0.8");
    }

    #[test]
    fn poisson_mixture_grows_with_load() {
        // This is the self-sustaining transition of Figure 4: increasing K
        // multiplies λ by K and α by K, so the load x = K²λα explodes and
        // so must B(m).
        let (lambda, alpha) = (1.0 / 150.0, 121.2);
        let mut prev = 0.0;
        for k in 1..=8u64 {
            let kf = k as f64;
            let b = poisson_mixture_residual(9, kf * lambda, kf * alpha);
            assert!(
                b >= prev,
                "B(m) must be nondecreasing in K: K={k} gives {b} < {prev}"
            );
            prev = b;
        }
        assert!(
            prev > 1500.0,
            "K=8 swarm must be self-sustaining, B(m)={prev}"
        );
    }

    #[test]
    fn poisson_mixture_decreasing_in_threshold() {
        let (lambda, alpha) = (0.05, 100.0); // load 5
        let b1 = poisson_mixture_residual(1, lambda, alpha);
        let b3 = poisson_mixture_residual(3, lambda, alpha);
        let b6 = poisson_mixture_residual(6, lambda, alpha);
        assert!(
            b1 > b3 && b3 > b6,
            "B(m) must fall as m rises: {b1}, {b3}, {b6}"
        );
    }

    #[test]
    fn ln_variant_consistent() {
        let (lambda, alpha) = (0.2, 4.0);
        for n in 1..=6 {
            let lin = residual_busy_period(n, lambda, alpha);
            let ln = ln_residual_busy_period(n, lambda, alpha);
            assert!((ln - lin.ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn survives_bundle_scale_loads() {
        // K = 10 bundle in the Fig. 4 setting: x = 100 · 0.808 ≈ 81.
        let b = ln_residual_busy_period(50, 10.0 / 150.0, 1212.0);
        assert!(b.is_finite() && b > 0.0);
    }
}
