//! Residence-time distributions.
//!
//! Customers of the availability queue are peers and publishers; their
//! "service time" is the time they stay online. The paper's derivations
//! need each distribution's mean, Laplace transform (eq. 18 evaluates
//! `1 − h(i/α)` for the initiator's transform `h`) and — for the
//! Monte-Carlo validator — a sampler.

use rand::Rng;
use rand_distr::Distribution as _;
use serde::{Deserialize, Serialize};

/// A nonnegative residence-time distribution with the three facets the
/// model needs: mean, Laplace transform and sampling.
pub trait ResidenceTime {
    /// Expected value `E[X]`.
    fn mean(&self) -> f64;

    /// Laplace transform `E[e^{-sX}]` for `s >= 0`.
    fn laplace(&self, s: f64) -> f64;

    /// Draw one sample.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
}

/// Exponential distribution with the given mean (the paper's default for
/// peer inter-arrival times, publisher residence times and download times).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// Exponential with mean `mean > 0`.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "Exp mean must be positive and finite, got {mean}"
        );
        Exp { mean }
    }

    /// The rate `1/mean`.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }
}

impl ResidenceTime for Exp {
    fn mean(&self) -> f64 {
        self.mean
    }

    fn laplace(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0);
        // E[e^{-sX}] = (1/θ) / (1/θ + s) = 1 / (1 + sθ)
        1.0 / (1.0 + s * self.mean)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        rand_distr::Exp::new(self.rate())
            .expect("positive rate")
            .sample(&mut RngAdapter(rng))
    }
}

/// Deterministic (point-mass) residence time; used in ablations to probe
/// sensitivity to the exponential assumption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Point mass at `value >= 0`.
    pub fn new(value: f64) -> Self {
        assert!(
            value >= 0.0 && value.is_finite(),
            "Deterministic value must be nonnegative, got {value}"
        );
        Deterministic { value }
    }
}

impl ResidenceTime for Deterministic {
    fn mean(&self) -> f64 {
        self.value
    }

    fn laplace(&self, s: f64) -> f64 {
        (-s * self.value).exp()
    }

    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.value
    }
}

/// Two-phase mixture: `X = X₁` (mean `α₁`) with probability `q₁`, else
/// `X₂` (mean `α₂`), both exponential.
///
/// This is the residence time of a random customer in §3.3.1: with
/// probability `λ/(λ+r)` the arrival is a peer (stays `s/μ` on average),
/// otherwise a publisher (stays `u`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mixture2 {
    /// Probability of drawing from the first component.
    pub q1: f64,
    /// First exponential component.
    pub x1: Exp,
    /// Second exponential component.
    pub x2: Exp,
}

impl Mixture2 {
    /// Mixture with weight `q1 ∈ [0, 1]` on `x1`.
    pub fn new(q1: f64, x1: Exp, x2: Exp) -> Self {
        assert!(
            (0.0..=1.0).contains(&q1),
            "mixture weight must be in [0,1], got {q1}"
        );
        Mixture2 { q1, x1, x2 }
    }
}

impl ResidenceTime for Mixture2 {
    fn mean(&self) -> f64 {
        self.q1 * self.x1.mean() + (1.0 - self.q1) * self.x2.mean()
    }

    fn laplace(&self, s: f64) -> f64 {
        self.q1 * self.x1.laplace(s) + (1.0 - self.q1) * self.x2.laplace(s)
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = RngAdapter(rng).gen();
        if u < self.q1 {
            self.x1.sample(rng)
        } else {
            self.x2.sample(rng)
        }
    }
}

/// Hypoexponential: a sum of independent exponential stages with the given
/// means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypoexponential {
    stage_means: Vec<f64>,
}

impl Hypoexponential {
    /// Sum of independent exponentials with means `stage_means` (all > 0).
    pub fn new(stage_means: Vec<f64>) -> Self {
        assert!(!stage_means.is_empty(), "need at least one stage");
        assert!(
            stage_means.iter().all(|&m| m > 0.0 && m.is_finite()),
            "stage means must be positive and finite"
        );
        Hypoexponential { stage_means }
    }

    /// The stage means.
    pub fn stage_means(&self) -> &[f64] {
        &self.stage_means
    }
}

impl ResidenceTime for Hypoexponential {
    fn mean(&self) -> f64 {
        self.stage_means.iter().sum()
    }

    fn laplace(&self, s: f64) -> f64 {
        // Product of stage transforms: Π 1/(1 + s·mᵢ)
        self.stage_means
            .iter()
            .map(|&m| 1.0 / (1.0 + s * m))
            .product()
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.stage_means
            .iter()
            .map(|&m| Exp::new(m).sample(rng))
            .sum()
    }
}

/// `max(X₁, …, Xₙ)` of n i.i.d. exponentials with mean `α`.
///
/// Lemma 3.3 of the paper: by memorylessness, the residual busy period
/// started by `n` extant leechers is initiated by a virtual customer whose
/// residence is this maximum, which is hypoexponential with stage means
/// `(α, α/2, …, α/n)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxOfExponentials {
    n: u64,
    alpha: f64,
}

impl MaxOfExponentials {
    /// Maximum of `n >= 1` exponentials with common mean `alpha > 0`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "need at least one exponential");
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "alpha must be positive, got {alpha}"
        );
        MaxOfExponentials { n, alpha }
    }

    /// Equivalent hypoexponential representation with stage means `α/i`.
    pub fn as_hypoexponential(&self) -> Hypoexponential {
        Hypoexponential::new((1..=self.n).map(|i| self.alpha / i as f64).collect())
    }
}

impl ResidenceTime for MaxOfExponentials {
    fn mean(&self) -> f64 {
        // E[max] = α Σ_{i=1}^{n} 1/i
        self.alpha * (1..=self.n).map(|i| 1.0 / i as f64).sum::<f64>()
    }

    fn laplace(&self, s: f64) -> f64 {
        // Π_{i=1}^{n} (i/α) / (i/α + s)  — paper, proof of Lemma 3.3.
        (1..=self.n)
            .map(|i| {
                let rate = i as f64 / self.alpha;
                rate / (rate + s)
            })
            .product()
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let e = Exp::new(self.alpha);
        (0..self.n).map(|_| e.sample(rng)).fold(0.0, f64::max)
    }
}

/// Adapter so `rand_distr` samplers (generic over `Rng`) can run on a
/// `&mut dyn RngCore`.
struct RngAdapter<'a>(&'a mut dyn rand::RngCore);

impl rand::RngCore for RngAdapter<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_mean<D: ResidenceTime>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_moments_and_laplace() {
        let e = Exp::new(4.0);
        assert_eq!(e.mean(), 4.0);
        assert_eq!(e.rate(), 0.25);
        assert_eq!(e.laplace(0.0), 1.0);
        assert!((e.laplace(0.25) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exp_sample_mean_converges() {
        let e = Exp::new(3.0);
        let m = sample_mean(&e, 200_000, 1);
        assert!((m - 3.0).abs() < 0.05, "sample mean {m}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn exp_rejects_zero_mean() {
        Exp::new(0.0);
    }

    #[test]
    fn deterministic_is_point_mass() {
        let d = Deterministic::new(7.0);
        assert_eq!(d.mean(), 7.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 7.0);
        assert!((d.laplace(0.1) - (-0.7f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let m = Mixture2::new(0.25, Exp::new(2.0), Exp::new(10.0));
        assert!((m.mean() - (0.25 * 2.0 + 0.75 * 10.0)).abs() < 1e-12);
        assert_eq!(m.laplace(0.0), 1.0);
    }

    #[test]
    fn mixture_sample_mean_converges() {
        let m = Mixture2::new(0.7, Exp::new(1.0), Exp::new(5.0));
        let s = sample_mean(&m, 200_000, 2);
        assert!(
            (s - m.mean()).abs() < 0.05,
            "sample mean {s} vs {}",
            m.mean()
        );
    }

    #[test]
    fn mixture_degenerate_weights() {
        let m1 = Mixture2::new(1.0, Exp::new(2.0), Exp::new(100.0));
        assert_eq!(m1.mean(), 2.0);
        let m0 = Mixture2::new(0.0, Exp::new(2.0), Exp::new(100.0));
        assert_eq!(m0.mean(), 100.0);
    }

    #[test]
    fn hypoexponential_mean_is_sum() {
        let h = Hypoexponential::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(h.mean(), 6.0);
        // transform at 0 is 1
        assert!((h.laplace(0.0) - 1.0).abs() < 1e-12);
        // product structure: single stage == exponential
        let h1 = Hypoexponential::new(vec![4.0]);
        assert_eq!(h1.laplace(0.5), Exp::new(4.0).laplace(0.5));
    }

    #[test]
    fn max_of_exponentials_mean_is_harmonic() {
        let m = MaxOfExponentials::new(3, 2.0);
        let expected = 2.0 * (1.0 + 0.5 + 1.0 / 3.0);
        assert!((m.mean() - expected).abs() < 1e-12);
    }

    #[test]
    fn max_of_exponentials_matches_hypoexponential() {
        let m = MaxOfExponentials::new(5, 1.5);
        let h = m.as_hypoexponential();
        assert!((m.mean() - h.mean()).abs() < 1e-12);
        for &s in &[0.0, 0.1, 1.0, 10.0] {
            assert!((m.laplace(s) - h.laplace(s)).abs() < 1e-12, "s={s}");
        }
    }

    #[test]
    fn max_of_exponentials_sample_mean_converges() {
        let m = MaxOfExponentials::new(4, 1.0);
        let s = sample_mean(&m, 100_000, 3);
        assert!(
            (s - m.mean()).abs() < 0.05,
            "sample mean {s} vs {}",
            m.mean()
        );
    }

    #[test]
    fn max_of_one_is_exponential() {
        let m = MaxOfExponentials::new(1, 3.0);
        let e = Exp::new(3.0);
        assert_eq!(m.mean(), e.mean());
        assert!((m.laplace(0.7) - e.laplace(0.7)).abs() < 1e-12);
    }

    #[test]
    fn laplace_is_decreasing_in_s() {
        let dists: Vec<Box<dyn ResidenceTime>> = vec![
            Box::new(Exp::new(2.0)),
            Box::new(Deterministic::new(2.0)),
            Box::new(Mixture2::new(0.5, Exp::new(1.0), Exp::new(3.0))),
            Box::new(Hypoexponential::new(vec![1.0, 1.0])),
            Box::new(MaxOfExponentials::new(3, 1.0)),
        ];
        for d in &dists {
            let mut prev = d.laplace(0.0);
            for &s in &[0.01, 0.1, 1.0, 10.0] {
                let v = d.laplace(s);
                assert!(v < prev, "laplace not decreasing");
                prev = v;
            }
        }
    }
}
