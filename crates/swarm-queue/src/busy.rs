//! Expected busy periods of the M/G/∞ queue.
//!
//! Browne & Steele (1993) give the expected busy period when the customer
//! *initiating* the busy period has an exceptional residence time. The
//! paper builds every availability result on three specializations:
//!
//! * **eq. (20)** — all customers exponential with mean `α`:
//!   `E[B] = (e^{βα} − 1)/β` ([`classical_busy_period`]);
//! * **eq. (18)** — general initiator with Laplace transform `h`, other
//!   customers exponential with mean `α`:
//!   `E[B] = θ + Σ_{i≥1} (βα)^i α (1 − h(i/α)) / (i!·i)`
//!   ([`exceptional_busy_period`]);
//! * **eq. (9)** — exponential initiator with mean `θ`, other customers a
//!   two-phase exponential mixture (peers with mean `α₁ = s/μ` w.p.
//!   `q₁ = λ/(λ+r)`, publishers with mean `α₂ = u` otherwise)
//!   ([`two_phase_busy_period`]).
//!
//! For bundles the exponent `βα ≈ K²λs/μ` reaches the hundreds, so each
//! formula has an `ln_*` twin evaluated entirely in the log domain.

use crate::dist::ResidenceTime;
use crate::series::{
    ln_add_exp, ln_factorial, ln_sub_exp, ln_sum_series, LogSumExp, SeriesControl,
};
use serde::{Deserialize, Serialize};

fn check_positive(name: &str, v: f64) {
    assert!(
        v > 0.0 && v.is_finite(),
        "{name} must be positive and finite, got {v}"
    );
}

/// Classical M/G/∞ busy period, paper eq. (20): all customers (including
/// the initiator) exponential with mean `alpha`, Poisson arrivals at rate
/// `beta`.
///
/// Returns `+inf` when `beta * alpha` exceeds ~709 (f64 overflow); use
/// [`ln_classical_busy_period`] in that regime.
pub fn classical_busy_period(beta: f64, alpha: f64) -> f64 {
    check_positive("beta", beta);
    check_positive("alpha", alpha);
    ((beta * alpha).exp() - 1.0) / beta
}

/// `ln E[B]` for the classical busy period, finite for any load:
/// `ln((e^{βα} − 1)/β)`.
pub fn ln_classical_busy_period(beta: f64, alpha: f64) -> f64 {
    check_positive("beta", beta);
    check_positive("alpha", alpha);
    ln_sub_exp(beta * alpha, 0.0) - beta.ln()
}

/// Busy period with an exceptional initiator, paper eq. (18).
///
/// The initiator draws its residence from `initiator` (mean `θ`, Laplace
/// transform `h`); all subsequent customers are exponential with mean
/// `alpha`; arrivals are Poisson at rate `beta`:
///
/// `E[B] = θ + Σ_{i≥1} (βα)^i α [1 − h(i/α)] / (i!·i)`
pub fn exceptional_busy_period(beta: f64, initiator: &dyn ResidenceTime, alpha: f64) -> f64 {
    ln_exceptional_busy_period(beta, initiator, alpha).exp()
}

/// `ln E[B]` for [`exceptional_busy_period`], evaluated in the log domain.
pub fn ln_exceptional_busy_period(beta: f64, initiator: &dyn ResidenceTime, alpha: f64) -> f64 {
    check_positive("beta", beta);
    check_positive("alpha", alpha);
    let theta = initiator.mean();
    assert!(theta >= 0.0, "initiator mean must be nonnegative");
    let ln_ba = (beta * alpha).ln();
    let ln_series = ln_sum_series(
        |i| {
            let h = initiator.laplace(i as f64 / alpha);
            debug_assert!(
                (0.0..=1.0 + 1e-12).contains(&h),
                "Laplace transform out of [0,1]: {h}"
            );
            let one_minus_h = (1.0 - h).max(0.0);
            if one_minus_h == 0.0 {
                return f64::NEG_INFINITY;
            }
            i as f64 * ln_ba + alpha.ln() + one_minus_h.ln() - ln_factorial(i) - (i as f64).ln()
        },
        SeriesControl::default(),
    );
    if theta == 0.0 {
        ln_series
    } else {
        ln_add_exp(theta.ln(), ln_series)
    }
}

/// Parameters of the paper's eq. (9): exponential initiator with mean
/// `theta`, subsequent customers a two-phase exponential mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoPhaseBusyPeriod {
    /// Poisson arrival rate `β` of customers *during* the busy period
    /// (peers plus publishers: `λ + r` for a swarm, `Λ + R` for a bundle).
    pub beta: f64,
    /// Mean residence time `θ` of the exceptional initiator (the publisher
    /// that starts the busy period: `u` or `U`).
    pub theta: f64,
    /// Probability that a subsequent customer is of type 1 (a peer):
    /// `q₁ = λ/(λ+r)`.
    pub q1: f64,
    /// Mean residence of type-1 customers (`α₁ = s/μ`, the download time).
    pub alpha1: f64,
    /// Mean residence of type-2 customers (`α₂ = u`, publisher residence).
    pub alpha2: f64,
}

impl TwoPhaseBusyPeriod {
    fn validate(&self) {
        check_positive("beta", self.beta);
        check_positive("theta", self.theta);
        check_positive("alpha1", self.alpha1);
        check_positive("alpha2", self.alpha2);
        assert!(
            (0.0..=1.0).contains(&self.q1),
            "q1 must be in [0,1], got {}",
            self.q1
        );
    }

    /// `E[B]` by eq. (9). May be `+inf` under extreme loads; use
    /// [`Self::ln_expected`] there.
    pub fn expected(&self) -> f64 {
        self.ln_expected().exp()
    }

    /// `ln E[B]` by eq. (9), evaluated in the log domain:
    ///
    /// `E[B] = θ + Σ_{i≥1} (βⁱ/i!) Σ_{j=0}^{i} C(i,j) q₁ʲ q₂^{i−j}
    ///          α₁^{1+j} α₂^{1−j+i} θ / (α₁α₂ + jθα₂ + θα₁(i−j))`
    pub fn ln_expected(&self) -> f64 {
        self.validate();
        let &TwoPhaseBusyPeriod {
            beta,
            theta,
            q1,
            alpha1,
            alpha2,
        } = self;
        let q2 = 1.0 - q1;
        let ln_q1 = if q1 > 0.0 { q1.ln() } else { f64::NEG_INFINITY };
        let ln_q2 = if q2 > 0.0 { q2.ln() } else { f64::NEG_INFINITY };

        let ln_series = ln_sum_series(
            |i| {
                let mut inner = LogSumExp::new();
                for j in 0..=i {
                    // Degenerate mixture weights: skip impossible terms
                    // rather than evaluate 0^0 via logs.
                    if (q1 == 0.0 && j > 0) || (q2 == 0.0 && j < i) {
                        continue;
                    }
                    let jf = j as f64;
                    let imj = (i - j) as f64;
                    let denom = alpha1 * alpha2 + jf * theta * alpha2 + theta * alpha1 * imj;
                    let mut t = crate::series::ln_binomial(i, j);
                    if j > 0 {
                        t += jf * ln_q1;
                    }
                    if i - j > 0 {
                        t += imj * ln_q2;
                    }
                    t +=
                        (1.0 + jf) * alpha1.ln() + (1.0 - jf + i as f64) * alpha2.ln() + theta.ln()
                            - denom.ln();
                    inner.add_ln(t);
                }
                i as f64 * beta.ln() - ln_factorial(i) + inner.ln_sum()
            },
            SeriesControl::default(),
        );
        ln_add_exp(theta.ln(), ln_series)
    }
}

/// Convenience wrapper: eq. (9) in linear domain.
pub fn two_phase_busy_period(p: TwoPhaseBusyPeriod) -> f64 {
    p.expected()
}

/// Convenience wrapper: eq. (9) in the log domain.
pub fn ln_two_phase_busy_period(p: TwoPhaseBusyPeriod) -> f64 {
    p.ln_expected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exp, MaxOfExponentials};

    #[test]
    fn classical_small_load() {
        // βα = 0.5: E[B] = (e^0.5 - 1)/β
        let b = classical_busy_period(0.25, 2.0);
        assert!((b - (0.5f64.exp() - 1.0) / 0.25).abs() < 1e-12);
    }

    #[test]
    fn ln_classical_matches_linear() {
        let b = classical_busy_period(0.1, 5.0);
        let ln_b = ln_classical_busy_period(0.1, 5.0);
        assert!((ln_b - b.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_classical_survives_huge_load() {
        // βα = 2000: linear form overflows, log form ≈ βα − ln β
        let ln_b = ln_classical_busy_period(2.0, 1000.0);
        assert!((ln_b - (2000.0 - 2f64.ln())).abs() < 1e-9);
        assert_eq!(classical_busy_period(2.0, 1000.0), f64::INFINITY);
    }

    #[test]
    fn classical_busy_period_grows_with_load() {
        let mut prev = 0.0;
        for k in 1..=10 {
            let b = classical_busy_period(0.01 * k as f64, 10.0);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn exceptional_with_exponential_initiator_theta_eq_alpha_reduces_to_classical() {
        // eq (18) with H = Exp(α) must equal eq (20).
        let (beta, alpha) = (0.3, 4.0);
        let b18 = exceptional_busy_period(beta, &Exp::new(alpha), alpha);
        let b20 = classical_busy_period(beta, alpha);
        assert!(
            ((b18 - b20) / b20).abs() < 1e-10,
            "eq18={b18} vs eq20={b20}"
        );
    }

    #[test]
    fn exceptional_eq19_closed_form() {
        // eq (19): exponential initiator mean θ ≠ α.
        // E[B] = θ + αθ Σ (βα)^i / (i! (α + iθ))
        let (beta, theta, alpha) = (0.2, 7.0, 3.0);
        let mut direct = theta;
        let mut pow = 1.0;
        let mut fact = 1.0;
        for i in 1..200u32 {
            pow *= beta * alpha;
            fact *= i as f64;
            direct += alpha * theta * pow / (fact * (alpha + i as f64 * theta));
        }
        let b = exceptional_busy_period(beta, &Exp::new(theta), alpha);
        assert!(((b - direct) / direct).abs() < 1e-10, "{b} vs {direct}");
    }

    #[test]
    fn exceptional_longer_initiator_gives_longer_busy_period() {
        let beta = 0.2;
        let alpha = 3.0;
        let short = exceptional_busy_period(beta, &Exp::new(1.0), alpha);
        let long = exceptional_busy_period(beta, &Exp::new(10.0), alpha);
        assert!(long > short);
    }

    #[test]
    fn exceptional_with_max_initiator_exceeds_single() {
        // A busy period started by max(X1..X5) outlasts one started by X1.
        let beta = 0.2;
        let alpha = 3.0;
        let one = exceptional_busy_period(beta, &MaxOfExponentials::new(1, alpha), alpha);
        let five = exceptional_busy_period(beta, &MaxOfExponentials::new(5, alpha), alpha);
        assert!(five > one);
        // n = 1 must agree with the classical form.
        let classical = classical_busy_period(beta, alpha);
        assert!(((one - classical) / classical).abs() < 1e-10);
    }

    #[test]
    fn two_phase_reduces_to_classical_when_all_means_equal() {
        // α1 = α2 = θ = α ⇒ eq (9) = eq (20) regardless of q1.
        let (beta, alpha) = (0.15, 6.0);
        for &q1 in &[0.0, 0.3, 0.5, 0.9, 1.0] {
            let p = TwoPhaseBusyPeriod {
                beta,
                theta: alpha,
                q1,
                alpha1: alpha,
                alpha2: alpha,
            };
            let b9 = p.expected();
            let b20 = classical_busy_period(beta, alpha);
            assert!(((b9 - b20) / b20).abs() < 1e-10, "q1={q1}: {b9} vs {b20}");
        }
    }

    #[test]
    fn two_phase_reduces_to_eq19_when_components_equal() {
        // α1 = α2 = α, θ free ⇒ eq (9) = eq (19) = exceptional exp initiator.
        let (beta, theta, alpha) = (0.25, 9.0, 2.5);
        let p = TwoPhaseBusyPeriod {
            beta,
            theta,
            q1: 0.4,
            alpha1: alpha,
            alpha2: alpha,
        };
        let b9 = p.expected();
        let b19 = exceptional_busy_period(beta, &Exp::new(theta), alpha);
        assert!(((b9 - b19) / b19).abs() < 1e-10, "{b9} vs {b19}");
    }

    #[test]
    fn two_phase_degenerate_q1_one_uses_only_component_one() {
        let p = TwoPhaseBusyPeriod {
            beta: 0.2,
            theta: 5.0,
            q1: 1.0,
            alpha1: 3.0,
            alpha2: 1234.0, // must be irrelevant
        };
        let q = TwoPhaseBusyPeriod { alpha2: 5.6, ..p };
        assert!(((p.expected() - q.expected()) / p.expected()).abs() < 1e-10);
    }

    #[test]
    fn two_phase_monotone_in_beta_and_theta() {
        let base = TwoPhaseBusyPeriod {
            beta: 0.1,
            theta: 5.0,
            q1: 0.6,
            alpha1: 4.0,
            alpha2: 2.0,
        };
        let more_arrivals = TwoPhaseBusyPeriod { beta: 0.2, ..base };
        let longer_initiator = TwoPhaseBusyPeriod {
            theta: 10.0,
            ..base
        };
        assert!(more_arrivals.expected() > base.expected());
        assert!(longer_initiator.expected() > base.expected());
    }

    #[test]
    fn two_phase_ln_matches_linear_in_safe_range() {
        let p = TwoPhaseBusyPeriod {
            beta: 0.3,
            theta: 4.0,
            q1: 0.7,
            alpha1: 6.0,
            alpha2: 2.0,
        };
        assert!((p.ln_expected() - p.expected().ln()).abs() < 1e-10);
    }

    #[test]
    fn two_phase_ln_survives_bundle_scale_loads() {
        // K = 30 bundle: β α₁ ≈ 30·0.5 · 30·60 = huge; ln stays finite.
        let p = TwoPhaseBusyPeriod {
            beta: 15.0,
            theta: 300.0,
            q1: 0.99,
            alpha1: 1800.0,
            alpha2: 300.0,
        };
        let ln_b = p.ln_expected();
        assert!(ln_b.is_finite());
        // βα₁ = 27000; ln E[B] must be of that order.
        assert!(ln_b > 20_000.0 && ln_b < 30_000.0, "ln_b = {ln_b}");
    }

    #[test]
    #[should_panic(expected = "q1 must be in [0,1]")]
    fn two_phase_rejects_bad_weight() {
        TwoPhaseBusyPeriod {
            beta: 0.1,
            theta: 1.0,
            q1: 1.5,
            alpha1: 1.0,
            alpha2: 1.0,
        }
        .expected();
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn classical_rejects_zero_beta() {
        classical_busy_period(0.0, 1.0);
    }
}
