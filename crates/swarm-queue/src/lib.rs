//! M/G/∞ queueing theory substrate for swarmsys.
//!
//! The paper's central insight is that *content availability* in a swarming
//! system is the busy period of an M/G/∞ queue: each peer or publisher is a
//! "customer" whose residence time is the time it stays online, and the
//! content is available exactly while the queue is non-empty (or above a
//! coverage threshold). This crate implements the queueing theory the model
//! needs:
//!
//! * [`dist`] — residence-time distributions with means, Laplace transforms
//!   and samplers: exponential, deterministic, two-phase mixtures (the
//!   peer-or-publisher residence time of §3.3.1) and hypoexponentials (the
//!   max-of-exponentials initiator of Lemma 3.3),
//! * [`arrivals`] — homogeneous and nonhomogeneous Poisson arrival
//!   processes,
//! * [`busy`] — expected busy periods: the classical
//!   `(e^{βα} − 1)/β` form (paper eq. 20), the exceptional-first-customer
//!   forms of Browne & Steele (eqs. 18, 19) and the two-phase mixture form
//!   the paper derives as eq. (9), each with a log-domain variant that
//!   stays finite when `βα` is in the hundreds (bundled swarms),
//! * [`residual`] — residual busy periods `B(n, m)` started by `n` extant
//!   customers and truncated at population `m` (paper eq. 12), and the
//!   steady-state Poisson mixture `B(m)` (paper eq. 13),
//! * [`mc`] — a Monte-Carlo M/G/∞ simulator used throughout the test
//!   suites to validate every closed form against brute-force simulation,
//! * [`transient`] — busy-period *distributions* (variance, tail
//!   quantiles, served counts) estimated by batched Monte-Carlo,
//! * [`series`] — the numerical kernel: log-sum-exp series summation,
//!   ln-factorials, Kahan compensation.
//!
//! Everything is pure computation: no I/O, no global state, deterministic
//! given an RNG.

pub mod arrivals;
pub mod busy;
pub mod dist;
pub mod general;
pub mod mc;
pub mod residual;
pub mod series;
pub mod transient;

pub use arrivals::{nonhomogeneous_poisson, poisson_process};
pub use busy::{
    classical_busy_period, exceptional_busy_period, ln_classical_busy_period,
    ln_two_phase_busy_period, two_phase_busy_period, TwoPhaseBusyPeriod,
};
pub use dist::{Deterministic, Exp, Hypoexponential, MaxOfExponentials, Mixture2, ResidenceTime};
pub use general::{general_busy_period, IntegratedTail, TailComponent};
pub use mc::{McBusyPeriod, McConfig};
pub use residual::{poisson_mixture_residual, residual_busy_period, residual_busy_period_above};
pub use transient::{sample_busy_periods, BusyPeriodDistribution};
