//! Property-based tests for the M/G/∞ machinery: the closed forms must
//! satisfy their structural identities for *any* parameters in range, not
//! just the paper's.

use proptest::prelude::*;
use swarm_queue::busy::{
    classical_busy_period, exceptional_busy_period, ln_classical_busy_period, TwoPhaseBusyPeriod,
};
use swarm_queue::dist::{Exp, MaxOfExponentials, ResidenceTime};
use swarm_queue::general::{general_busy_period, IntegratedTail};
use swarm_queue::residual::{poisson_mixture_residual, residual_busy_period};
use swarm_queue::series::{ln_add_exp, ln_factorial, ln_sub_exp, LogSumExp};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ln_factorial_recurrence(n in 1u64..5000) {
        let direct = ln_factorial(n);
        let recur = (n as f64).ln() + ln_factorial(n - 1);
        prop_assert!((direct - recur).abs() < 1e-8, "n={n}: {direct} vs {recur}");
    }

    #[test]
    fn log_sum_exp_matches_direct(terms in prop::collection::vec(-30.0..30.0f64, 1..50)) {
        let mut acc = LogSumExp::new();
        for &t in &terms {
            acc.add_ln(t);
        }
        let direct: f64 = terms.iter().map(|t| t.exp()).sum();
        prop_assert!((acc.ln_sum() - direct.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_add_sub_are_inverses(a in -50.0..50.0f64, b in -50.0..50.0f64) {
        // When |a - b| approaches the f64 mantissa width (~36 nats) the
        // smaller term is absorbed and cannot be recovered — inherent to
        // floating point, not to the log-domain helpers.
        prop_assume!((a - b).abs() < 30.0);
        let sum = ln_add_exp(a, b);
        // (e^a + e^b) - e^b == e^a. Cancellation costs ~eps·e^{|a-b|} of
        // log precision, so the tolerance scales with the gap.
        let back = ln_sub_exp(sum, b);
        let tol = 1e-12 * (a - b).abs().exp() + 1e-9;
        prop_assert!((back - a).abs() < tol, "{back} vs {a} (tol {tol})");
    }

    #[test]
    fn ln_busy_period_matches_linear(beta in 0.01..0.5f64, alpha in 0.5..50f64) {
        prop_assume!(beta * alpha < 30.0);
        let lin = classical_busy_period(beta, alpha);
        let ln = ln_classical_busy_period(beta, alpha);
        prop_assert!((ln - lin.ln()).abs() < 1e-9);
    }

    #[test]
    fn eq9_reduces_to_classical_at_equal_means(
        beta in 0.01..0.3f64,
        alpha in 0.5..30f64,
        q1 in 0.0..1.0f64,
    ) {
        prop_assume!(beta * alpha < 25.0);
        let p = TwoPhaseBusyPeriod { beta, theta: alpha, q1, alpha1: alpha, alpha2: alpha };
        let b9 = p.expected();
        let b20 = classical_busy_period(beta, alpha);
        prop_assert!(((b9 - b20) / b20).abs() < 1e-8, "{b9} vs {b20}");
    }

    #[test]
    fn eq9_monotone_in_component_means(
        beta in 0.01..0.2f64,
        theta in 1.0..20f64,
        q1 in 0.05..0.95f64,
        alpha1 in 1.0..20f64,
        alpha2 in 1.0..20f64,
    ) {
        prop_assume!(beta * alpha1.max(alpha2).max(theta) < 20.0);
        let base = TwoPhaseBusyPeriod { beta, theta, q1, alpha1, alpha2 };
        let bigger1 = TwoPhaseBusyPeriod { alpha1: alpha1 * 1.3, ..base };
        let bigger2 = TwoPhaseBusyPeriod { alpha2: alpha2 * 1.3, ..base };
        prop_assert!(bigger1.expected() > base.expected());
        prop_assert!(bigger2.expected() > base.expected());
    }

    #[test]
    fn eq18_with_exp_initiator_matches_eq9_corner(
        beta in 0.01..0.2f64,
        theta in 1.0..30f64,
        alpha in 1.0..20f64,
    ) {
        prop_assume!(beta * alpha.max(theta) < 20.0);
        let via18 = exceptional_busy_period(beta, &Exp::new(theta), alpha);
        let via9 = TwoPhaseBusyPeriod { beta, theta, q1: 1.0, alpha1: alpha, alpha2: alpha }
            .expected();
        prop_assert!(((via18 - via9) / via9).abs() < 1e-8);
    }

    #[test]
    fn residual_equals_exceptional_with_max_initiator(
        n in 1u64..10,
        lambda in 0.02..0.4f64,
        alpha in 0.5..8f64,
    ) {
        prop_assume!(lambda * alpha < 6.0);
        let via12 = residual_busy_period(n, lambda, alpha);
        let via18 = exceptional_busy_period(lambda, &MaxOfExponentials::new(n, alpha), alpha);
        prop_assert!(((via12 - via18) / via18).abs() < 1e-7);
    }

    #[test]
    fn residual_monotone_in_population(
        n in 1u64..12,
        lambda in 0.02..0.4f64,
        alpha in 0.5..8f64,
    ) {
        prop_assume!(lambda * alpha < 6.0);
        prop_assert!(residual_busy_period(n + 1, lambda, alpha) > residual_busy_period(n, lambda, alpha));
        // At least as long as the longest initial residence (E[max]).
        let e_max: f64 = (1..=n).map(|i| alpha / i as f64).sum();
        prop_assert!(residual_busy_period(n, lambda, alpha) >= e_max - 1e-9);
    }

    #[test]
    fn poisson_mixture_bounded_by_tail_population(
        m in 0u64..8,
        lambda in 0.02..0.3f64,
        alpha in 0.5..8f64,
    ) {
        prop_assume!(lambda * alpha < 5.0);
        let bm = poisson_mixture_residual(m, lambda, alpha);
        prop_assert!(bm >= 0.0);
        // Mixture over i > m of B(i,m), each bounded by B(i_max, 0): use a
        // generous structural bound.
        let cap = residual_busy_period(((lambda * alpha) as u64 + 12 * ((lambda*alpha).sqrt() as u64) + 60).max(m + 1), lambda, alpha);
        prop_assert!(bm <= cap + 1e-6, "B(m) {bm} exceeds cap {cap}");
    }

    #[test]
    fn laplace_transforms_bounded_and_at_one_at_zero(
        mean in 0.1..100f64,
        s in 0.0..10f64,
        n in 1u64..8,
    ) {
        let dists: Vec<Box<dyn ResidenceTime>> = vec![
            Box::new(Exp::new(mean)),
            Box::new(MaxOfExponentials::new(n, mean)),
        ];
        for d in &dists {
            let h = d.laplace(s);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
            prop_assert!((d.laplace(0.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn general_busy_period_matches_two_phase(
        beta in 0.02..0.2f64,
        theta in 1.0..15f64,
        q1 in 0.05..0.95f64,
        alpha1 in 1.0..12f64,
        alpha2 in 1.0..12f64,
    ) {
        prop_assume!(beta * alpha1.max(alpha2).max(theta) < 10.0);
        let tail = IntegratedTail::mix(
            q1,
            &IntegratedTail::exponential(alpha1),
            &IntegratedTail::exponential(alpha2),
        );
        let general = general_busy_period(beta, theta, &tail);
        let two_phase = TwoPhaseBusyPeriod { beta, theta, q1, alpha1, alpha2 }.expected();
        prop_assert!(((general - two_phase) / two_phase).abs() < 1e-7);
    }

    #[test]
    fn integrated_tail_hypoexp_is_valid(m1 in 0.5..20f64, ratio in 1.1..10f64) {
        let m2 = m1 * ratio;
        let t = IntegratedTail::hypoexp2(m1, m2);
        prop_assert!((t.mean() - (m1 + m2)).abs() / (m1 + m2) < 1e-9);
        // Nonincreasing and nonnegative over a broad range.
        let mut prev = t.eval(0.0);
        for i in 1..30 {
            let v = t.eval((m1 + m2) * i as f64 / 10.0);
            prop_assert!(v >= -1e-9);
            prop_assert!(v <= prev + 1e-9);
            prev = v;
        }
    }
}
