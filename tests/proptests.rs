//! Property-based tests on the public API: invariants that must hold for
//! *any* valid parameterization, not just the paper's.

use proptest::prelude::*;
use swarmsys::model::params::{PublisherScaling, SwarmParams};
use swarmsys::model::{impatient, patient, simple, threshold};
use swarmsys::queue::busy::{classical_busy_period, TwoPhaseBusyPeriod};
use swarmsys::queue::residual::{residual_busy_period, residual_busy_period_above};

/// Swarm parameters across four orders of magnitude, kept in the regime
/// where the linear-domain formulas stay finite.
fn swarm_params() -> impl Strategy<Value = SwarmParams> {
    (
        1e-4..0.05f64,    // lambda
        100.0..50_000f64, // size
        10.0..500f64,     // mu
        1e-5..0.01f64,    // r
        10.0..2_000f64,   // u
    )
        .prop_map(|(lambda, size, mu, r, u)| SwarmParams {
            lambda,
            size,
            mu,
            r,
            u,
        })
        .prop_filter("bounded load keeps E[B] finite", |p| {
            (p.lambda + p.r) * (p.service_time().max(p.u)) < 50.0
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unavailability_is_a_probability(p in swarm_params()) {
        for v in [
            impatient::unavailability(&p),
            patient::unavailability(&p),
            simple::publisher_unavailability(&p),
            simple::coverage_unavailability(&p),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "P = {v}");
        }
    }

    #[test]
    fn download_time_at_least_service_time(p in swarm_params()) {
        prop_assert!(patient::download_time(&p) >= p.service_time());
        // ... and at most service + a full idle period.
        prop_assert!(patient::download_time(&p) <= p.service_time() + 1.0 / p.r + 1e-9);
    }

    #[test]
    fn bundling_never_hurts_availability(p in swarm_params(), k in 2u32..6) {
        let single = impatient::ln_unavailability(&p);
        let bundle = impatient::ln_unavailability(&p.bundle(k, PublisherScaling::Fixed));
        prop_assert!(bundle <= single + 1e-6, "K={k}: {bundle} > {single}");
    }

    #[test]
    fn theorem_3_2a_inflation_bounded_by_k(p in swarm_params(), k in 2u32..6) {
        let t1 = patient::download_time(&p);
        let tk = patient::download_time(&p.bundle(k, PublisherScaling::Fixed));
        prop_assert!(tk <= k as f64 * t1 + 1e-6, "K={k}: {tk} vs {t1}");
    }

    #[test]
    fn busy_period_monotone_in_rates(
        beta in 0.001..0.2f64,
        alpha in 1.0..100f64,
    ) {
        prop_assume!(beta * alpha < 40.0);
        let b = classical_busy_period(beta, alpha);
        let b_more_arrivals = classical_busy_period(beta * 1.5, alpha);
        let b_longer_stays = classical_busy_period(beta, alpha * 1.5);
        prop_assert!(b_more_arrivals > b);
        prop_assert!(b_longer_stays > b);
        // A busy period is at least one residence.
        prop_assert!(b >= alpha);
    }

    #[test]
    fn eq9_at_least_initiator_residence(
        beta in 0.001..0.1f64,
        theta in 1.0..500f64,
        q1 in 0.0..1.0f64,
        alpha1 in 1.0..200f64,
        alpha2 in 1.0..200f64,
    ) {
        prop_assume!(beta * alpha1.max(alpha2).max(theta) < 40.0);
        let p = TwoPhaseBusyPeriod { beta, theta, q1, alpha1, alpha2 };
        let b = p.expected();
        prop_assert!(b >= theta, "E[B] = {b} < theta = {theta}");
    }

    #[test]
    fn residual_busy_periods_chain(
        n in 2u64..12,
        m in 0u64..6,
        lambda in 0.01..0.3f64,
        alpha in 0.5..10f64,
    ) {
        prop_assume!(m < n);
        prop_assume!(lambda * alpha < 8.0);
        let whole = residual_busy_period(n, lambda, alpha);
        let above = residual_busy_period_above(n, m, lambda, alpha);
        let below = residual_busy_period(m, lambda, alpha);
        // B(n,0) = B(n,m) + B(m,0)
        prop_assert!(((above + below - whole) / whole).abs() < 1e-9);
        prop_assert!(above >= 0.0);
    }

    #[test]
    fn threshold_unavailability_monotone_in_m(
        p in swarm_params(),
        m in 1u64..8,
    ) {
        prop_assume!(p.peer_load() < 30.0);
        let low = threshold::unavailability(&p, m);
        let high = threshold::unavailability(&p, m + 3);
        prop_assert!((0.0..=1.0).contains(&low));
        // Larger threshold = easier to lose coverage = more unavailable.
        prop_assert!(high >= low - 1e-12);
    }

    #[test]
    fn bundle_construction_scales_linearly(p in swarm_params(), k in 1u32..8) {
        let b = p.bundle(k, PublisherScaling::Proportional);
        let kf = k as f64;
        prop_assert!((b.lambda - kf * p.lambda).abs() < 1e-12);
        prop_assert!((b.size - kf * p.size).abs() < 1e-6);
        prop_assert!((b.r - kf * p.r).abs() < 1e-12);
        prop_assert!((b.u - kf * p.u).abs() < 1e-6);
        prop_assert!((b.peer_load() - kf * kf * p.peer_load()).abs() < 1e-6);
    }

    #[test]
    fn serde_roundtrip_swarm_params(p in swarm_params()) {
        // JSON text roundtrips may lose the final ULP; require agreement
        // to relative 1e-12, which is all downstream consumers need.
        let json = serde_json::to_string(&p).unwrap();
        let back: SwarmParams = serde_json::from_str(&json).unwrap();
        for (a, b) in [
            (p.lambda, back.lambda),
            (p.size, back.size),
            (p.mu, back.mu),
            (p.r, back.r),
            (p.u, back.u),
        ] {
            prop_assert!(((a - b) / a).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
