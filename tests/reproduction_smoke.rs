//! Smoke test over the reproduction harness: every experiment must run in
//! quick mode and report the paper's qualitative findings in its JSON.

use swarm_bench::{run_experiment, EXPERIMENTS};

#[test]
fn fast_experiments_run_and_report() {
    // The cheap experiments (model-only or small simulations) run here
    // end-to-end; the expensive ones have their own module tests.
    for id in [
        "fig2",
        "fig3",
        "fig7",
        "table-bm",
        "table-friends",
        "ablation-threshold",
        "ablation-lingering",
        "ablation-zipf",
        "ablation-publisher",
        "ablation-baseline",
    ] {
        let r = run_experiment(id, true).unwrap_or_else(|| panic!("{id} must dispatch"));
        assert_eq!(r.id, id);
        assert!(!r.text.is_empty(), "{id} produced no text");
        assert!(!r.data.is_null(), "{id} produced no data");
    }
}

#[test]
fn experiment_registry_is_complete_and_unique() {
    assert!(EXPERIMENTS.len() >= 19, "experiment registry shrank");
    let mut ids = EXPERIMENTS.to_vec();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), EXPERIMENTS.len(), "duplicate experiment ids");
    for id in EXPERIMENTS {
        // Dispatch resolves for every registered id (execution is covered
        // by per-module tests and the fast loop above).
        assert!(
            id.starts_with("fig")
                || id.starts_with("table-")
                || id.starts_with("ablation-")
                || id.starts_with("catalog-")
                || id.starts_with("net-"),
            "unexpected id shape: {id}"
        );
    }
}

#[test]
fn reports_save_to_disk() {
    let dir = std::env::temp_dir().join("swarmsys-repro-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let r = run_experiment("table-bm", true).expect("dispatch");
    r.save(&dir).expect("save");
    assert!(dir.join("table-bm.txt").exists());
    assert!(dir.join("table-bm.json").exists());
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("table-bm.json")).unwrap()).unwrap();
    assert_eq!(json["m"], 9);
    let _ = std::fs::remove_dir_all(&dir);
}
