//! Cross-crate integration: the block-level engine and the flow-level
//! simulator must agree qualitatively — they are two substrates for the
//! same phenomena.

use swarmsys::bt::{run as bt_run, BtConfig, BtPublisher};
use swarmsys::sim::{run as flow_run, Patience, PublisherProcess, ServiceModel, SimConfig};

#[test]
fn service_times_agree_under_abundant_availability() {
    // With an always-on publisher both engines should deliver downloads
    // at roughly s/μ.
    let k = 2u32;
    let bt = bt_run(&BtConfig {
        publisher: BtPublisher::AlwaysOn,
        horizon: 3_000,
        drain_ticks: 1_200,
        warmup: 500,
        ..BtConfig::paper_section_4_3(k, 11)
    });
    let flow = flow_run(&SimConfig {
        lambda: k as f64 / 60.0,
        service: ServiceModel::Exponential { mean: 160.0 },
        publisher: PublisherProcess::SingleOnOff {
            on_mean: 1e9,
            off_mean: 1.0,
            initially_on: true,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: 0,
        horizon: 50_000.0,
        warmup: 1_000.0,
        seed: 12,
        record_timeline: false,
    });
    let t_bt = bt.mean_download_time();
    let t_flow = flow.mean_download_time();
    assert!(
        (t_bt - t_flow).abs() / t_flow < 0.35,
        "block {t_bt} vs flow {t_flow}"
    );
}

#[test]
fn both_engines_show_the_self_sustaining_transition() {
    // Seedless swarms: K=1 dies early, K=8 sustains — in both engines.
    // Block level: §4.2 configuration.
    let small_bt = bt_run(&BtConfig::paper_section_4_2(1, 21));
    let large_bt = bt_run(&BtConfig::paper_section_4_2(8, 21));
    assert!(
        large_bt.last_available_tick.unwrap_or(0) > small_bt.last_available_tick.unwrap_or(0),
        "block-level: K=8 must stay available longer"
    );

    // Flow level: same parameters, coverage threshold 9.
    let flow_cfg = |k: u32, seed: u64| SimConfig {
        lambda: k as f64 / 150.0,
        service: ServiceModel::Exponential {
            mean: k as f64 * 121.2,
        },
        publisher: PublisherProcess::SingleOnOff {
            // Publisher long gone after an initial seeding window (drawn
            // exponential with a 3000 s mean — long enough for the K=8
            // population to reach steady state before departure).
            on_mean: 3_000.0,
            off_mean: 1e12,
            initially_on: true,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: 9,
        horizon: 30_000.0,
        warmup: 0.0,
        seed,
        record_timeline: false,
    };
    let small_flow = flow_run(&flow_cfg(1, 22));
    let large_flow = flow_run(&flow_cfg(8, 22));
    assert!(
        large_flow.availability > small_flow.availability,
        "flow-level: K=8 avail {} must exceed K=1 avail {}",
        large_flow.availability,
        small_flow.availability
    );
}

#[test]
fn both_engines_show_waiting_under_intermittent_publisher() {
    // K=1 with the §4.3 on/off publisher: both engines must report
    // download times well above the pure service time.
    let bt = bt_run(&BtConfig {
        horizon: 2_400,
        drain_ticks: 2_400,
        ..BtConfig::paper_section_4_3(1, 31)
    });
    assert!(
        bt.mean_download_time() > 160.0,
        "block-level waits missing: {}",
        bt.mean_download_time()
    );

    let flow = flow_run(&SimConfig {
        lambda: 1.0 / 60.0,
        service: ServiceModel::Exponential { mean: 80.0 },
        publisher: PublisherProcess::SingleOnOff {
            on_mean: 300.0,
            off_mean: 900.0,
            initially_on: true,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: 9,
        horizon: 100_000.0,
        warmup: 2_000.0,
        seed: 32,
        record_timeline: false,
    });
    assert!(
        flow.mean_download_time() > 2.0 * 80.0,
        "flow-level waits missing: {}",
        flow.mean_download_time()
    );
}

#[test]
fn flash_departures_are_a_block_level_phenomenon() {
    // The flow simulator with threshold m also releases waiting peers in
    // bursts when a publisher returns, but the block engine's bursts are
    // sharper (whole cohorts complete within seconds). Check the block
    // engine reports a meaningful burst statistic at K=2.
    let bt = bt_run(&BtConfig {
        horizon: 2_400,
        drain_ticks: 1_200,
        ..BtConfig::paper_section_4_3(2, 41)
    });
    assert!(bt.max_flash_departures >= 2, "no flash departures at K=2");
}
