//! End-to-end measurement pipeline: catalog → classification → agents →
//! CDFs → case studies, checking internal consistency across crates.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use swarmsys::measurement::{
    availability_study, book_stats, bundling_extent, generate_catalog, is_bundle,
    stationary_availability, CatalogConfig, Category,
};

fn catalog() -> Vec<swarmsys::measurement::Swarm> {
    generate_catalog(&CatalogConfig {
        scale: 0.004,
        seed: 77,
    })
}

#[test]
fn classification_agrees_with_generated_structure() {
    // The extension-based classifier must recover the generator's intent:
    // music bundles carry >= 2 audio files, singles do not.
    let swarms = catalog();
    for s in swarms.iter().filter(|s| s.category == Category::Music) {
        let audio = s
            .files
            .iter()
            .filter(|f| ["mp3", "mid", "wav"].contains(&f.extension.as_str()))
            .count();
        assert_eq!(is_bundle(s), audio >= 2, "swarm {}", s.id);
    }
}

#[test]
fn every_category_has_plausible_extent() {
    let swarms = catalog();
    for cat in Category::ALL {
        let e = bundling_extent(&swarms, cat);
        assert!(e.total > 0, "{cat:?} empty");
        assert!(e.bundles <= e.total);
        // Only books can have collections.
        if cat != Category::Books {
            assert_eq!(e.collections, 0, "{cat:?} has collections");
        }
    }
}

#[test]
fn bundles_are_more_available_in_the_ground_truth() {
    // The generator encodes the paper's causal structure: aggregated
    // demand + committed publishers ⇒ higher stationary availability for
    // bundles, category by category.
    let swarms = catalog();
    for cat in [Category::Music, Category::Tv, Category::Books] {
        let (mut b_sum, mut b_n, mut s_sum, mut s_n) = (0.0, 0u32, 0.0, 0u32);
        for s in swarms.iter().filter(|s| s.category == cat) {
            let a = stationary_availability(s, s.age_days);
            if is_bundle(s) {
                b_sum += a;
                b_n += 1;
            } else {
                s_sum += a;
                s_n += 1;
            }
        }
        let (b_avg, s_avg) = (b_sum / b_n as f64, s_sum / s_n as f64);
        assert!(
            b_avg > s_avg,
            "{cat:?}: bundles {b_avg:.3} must beat singles {s_avg:.3}"
        );
    }
}

#[test]
fn study_is_deterministic_given_seeds() {
    let swarms = catalog();
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        availability_study(&swarms[..200], 2, &mut rng)
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.first_month.sorted_values(), b.first_month.sorted_values());
    let c = run(6);
    assert_ne!(a.first_month.sorted_values(), c.first_month.sorted_values());
}

#[test]
fn book_stats_internally_consistent() {
    let swarms = catalog();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let stats = book_stats(&swarms, &mut rng);
    assert!(stats.total > 0);
    assert!(stats.collections <= stats.total);
    for v in [
        stats.unavailable_all,
        stats.unavailable_collections,
        stats.unavailable_collections_effective,
    ] {
        assert!((0.0..=1.0).contains(&v));
    }
    // Folding can only help.
    assert!(stats.unavailable_collections_effective <= stats.unavailable_collections);
    assert!(stats.downloads_typical > 0.0);
    // Collections are rare (841 of 66k in the paper); at small catalog
    // scales there may be none, in which case the metric is zero.
    if stats.collections > 0 {
        assert!(stats.downloads_collections > 0.0);
    }
}

#[test]
fn subset_collections_reference_valid_supersets() {
    let swarms = catalog();
    for s in &swarms {
        if let Some(sup) = s.subset_of {
            let sup = &swarms[sup as usize];
            assert_eq!(sup.category, Category::Books);
            assert!(sup.title.contains("collection"));
            assert!(sup.id != s.id);
        }
    }
}
