//! Cross-crate integration: the analytic model (swarm-core) must predict
//! what the flow-level simulator (swarm-sim) measures, across the model
//! variants of §3.

use swarmsys::model::params::{PublisherScaling, SwarmParams};
use swarmsys::model::{impatient, patient};
use swarmsys::sim::{replicate, Patience, SimConfig};

fn base_swarm() -> SwarmParams {
    SwarmParams {
        lambda: 1.0 / 60.0,
        size: 4_000.0,
        mu: 50.0,
        r: 1.0 / 900.0,
        u: 300.0,
    }
}

fn sim_config(p: &SwarmParams, patience: Patience, seed: u64) -> SimConfig {
    SimConfig {
        warmup: 10_000.0,
        ..SimConfig::from_params(p, patience, 0, 300_000.0, seed)
    }
}

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[test]
fn eq10_unavailability_matches_blocking_probability() {
    // §3.3.1: P = (1/r)/(E[B] + 1/r); by PASTA the simulator's blocked
    // fraction estimates the same quantity.
    for (i, p) in [
        base_swarm(),
        SwarmParams {
            r: 1.0 / 3_000.0,
            ..base_swarm()
        },
        SwarmParams {
            lambda: 1.0 / 200.0,
            ..base_swarm()
        },
    ]
    .iter()
    .enumerate()
    {
        let rep = replicate(
            &sim_config(p, Patience::Impatient, 100 + i as u64),
            6,
            threads(),
        );
        let simulated = rep.pooled.blocked_fraction();
        let model = impatient::unavailability(p);
        assert!(
            ((simulated - model) / model).abs() < 0.15,
            "case {i}: model {model} vs simulated {simulated}"
        );
    }
}

#[test]
fn eq11_download_time_matches_patient_simulation() {
    for (i, p) in [
        base_swarm(),
        SwarmParams {
            r: 1.0 / 2_000.0,
            ..base_swarm()
        },
    ]
    .iter()
    .enumerate()
    {
        let rep = replicate(
            &sim_config(p, Patience::Patient, 200 + i as u64),
            6,
            threads(),
        );
        let simulated = rep.pooled.mean_download_time();
        let model = patient::download_time(p);
        assert!(
            ((simulated - model) / model).abs() < 0.15,
            "case {i}: model {model} vs simulated {simulated}"
        );
    }
}

#[test]
fn busy_period_lengths_match_the_model() {
    let p = base_swarm();
    let rep = replicate(&sim_config(&p, Patience::Impatient, 300), 8, threads());
    let simulated = rep.pooled.busy_periods.mean();
    let model = impatient::busy_period(&p);
    assert!(
        ((simulated - model) / model).abs() < 0.2,
        "model {model} vs simulated {simulated}"
    );
}

#[test]
fn bundling_gain_is_visible_end_to_end() {
    // The headline: with a rare publisher, a K=4 bundle downloads faster
    // than the single file — in the analytic model AND in simulation.
    let single = SwarmParams {
        r: 1.0 / 6_000.0,
        ..base_swarm()
    };
    let bundle = single.bundle(4, PublisherScaling::Fixed);

    let t_single_model = patient::download_time(&single);
    let t_bundle_model = patient::download_time(&bundle);
    assert!(
        t_bundle_model < t_single_model,
        "model disagrees with the paper"
    );

    let t_single_sim = replicate(&sim_config(&single, Patience::Patient, 400), 5, threads())
        .pooled
        .mean_download_time();
    let t_bundle_sim = replicate(&sim_config(&bundle, Patience::Patient, 401), 5, threads())
        .pooled
        .mean_download_time();
    assert!(
        t_bundle_sim < t_single_sim,
        "simulation disagrees: bundle {t_bundle_sim} vs single {t_single_sim}"
    );
}

#[test]
fn lingering_model_matches_lingering_simulation() {
    // §3.3.4: peers lingering 1/γ after completion lengthen busy periods.
    let p = SwarmParams {
        lambda: 1.0 / 100.0,
        size: 2_000.0,
        mu: 50.0,
        r: 1.0 / 2_000.0,
        u: 200.0,
    };
    let gamma = 1.0 / 120.0; // linger 2 minutes
    let model = swarmsys::model::lingering::unavailability(&p, gamma);

    let cfg = SimConfig {
        linger_mean: Some(1.0 / gamma),
        ..sim_config(&p, Patience::Impatient, 500)
    };
    let rep = replicate(&cfg, 8, threads());
    let simulated = rep.pooled.blocked_fraction();
    assert!(
        ((simulated - model) / model).abs() < 0.2,
        "model {model} vs simulated {simulated}"
    );
}

#[test]
fn mixed_bundling_joint_unavailability_matches_model() {
    // §5 mixed bundling: file k is blocked only when BOTH its individual
    // swarm and the bundle swarm are idle. The model multiplies the two
    // unavailabilities (independent processes); check that against a
    // joint trace built from two independently simulated swarms.
    use swarmsys::model::mixed::{mixed_bundling, FileSpec};

    let files = vec![
        FileSpec {
            lambda: 1.0 / 5.0,
            size: 4_000.0,
        },
        FileSpec {
            lambda: 1.0 / 600.0,
            size: 4_000.0,
        },
    ];
    let (mu, r, u) = (50.0, 1.0 / 5_000.0, 300.0);
    let phi = 0.1;
    let model = mixed_bundling(&files, mu, r, u, phi);

    // Simulate the niche file's individual swarm and the bundle swarm.
    let horizon = 2_000_000.0;
    let mk = |lambda: f64, size: f64, seed: u64| SimConfig {
        record_timeline: true,
        ..SimConfig::from_params(
            &SwarmParams {
                lambda,
                size,
                mu,
                r,
                u,
            },
            Patience::Impatient,
            0,
            horizon,
            seed,
        )
    };
    let indiv = swarmsys::sim::run(&mk((1.0 - phi) * files[1].lambda, files[1].size, 901));
    let bundle_lambda = phi * (files[0].lambda + files[1].lambda);
    let bundle = swarmsys::sim::run(&mk(bundle_lambda, 8_000.0, 902));

    // Joint unavailability sampled on a grid.
    let samples = 40_000;
    let both_idle = (0..samples)
        .filter(|i| {
            let t = horizon * (*i as f64 + 0.5) / samples as f64;
            !indiv.available_at(t) && !bundle.available_at(t)
        })
        .count() as f64
        / samples as f64;
    let predicted = model.files[1].unavailability;
    assert!(
        (both_idle - predicted).abs() < 0.08,
        "joint idle fraction {both_idle} vs model {predicted}"
    );
}

#[test]
fn availability_fraction_consistent_with_unavailability() {
    // Time-average availability and the arriving-peer unavailability must
    // agree (PASTA again, at the availability-process level).
    let p = base_swarm();
    let rep = replicate(&sim_config(&p, Patience::Impatient, 600), 6, threads());
    let avail_time = rep.pooled.availability;
    let p_model = impatient::unavailability(&p);
    assert!(
        ((1.0 - avail_time) - p_model).abs() < 0.05,
        "time-unavailability {} vs P {}",
        1.0 - avail_time,
        p_model
    );
}
