//! `swarmsys` — the library as a command-line tool.
//!
//! ```text
//! swarmsys model   --lambda 0.0067 --size 4000 --mu 50 --r 0.0001 --u 300
//! swarmsys sweep   --lambda 0.0067 --size 4000 --mu 50 --r 0.0001 --u 300 --kmax 10
//! swarmsys plan    --mu 50 --r 0.0002 --u 300 --file 0.1:4000 --file 0.02:4000 --file 0.005:2000
//! swarmsys simulate --lambda 0.0167 --size 4000 --mu 50 --on 300 --off 900 --m 9 --horizon 100000
//! ```
//!
//! Units are kB and seconds throughout. Every subcommand prints a short
//! human-readable report; `--json` switches to machine-readable output.

use std::collections::HashMap;
use std::process::ExitCode;
use swarmsys::model::bundling::{optimal_bundle_size, sweep};
use swarmsys::model::params::{PublisherScaling, SwarmParams};
use swarmsys::model::partition::{evaluate_partition, greedy_partition, CatalogFile, Environment};
use swarmsys::model::{impatient, patient};
use swarmsys::sim::{replicate, Patience, PublisherProcess, ServiceModel, SimConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let (flags, files) = parse_flags(rest);
    let json = flags.contains_key("json");
    let result = match cmd.as_str() {
        "model" => cmd_model(&flags, json),
        "sweep" => cmd_sweep(&flags, json),
        "plan" => cmd_plan(&flags, &files, json),
        "simulate" => cmd_simulate(&flags, json),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: swarmsys <model|sweep|plan|simulate> [flags] [--json]\n\
         \n\
         model    --lambda R --size KB --mu KBPS --r R --u S\n\
         \u{20}        availability and download time of one swarm\n\
         sweep    (model flags) [--kmax N] [--scaling fixed|proportional]\n\
         \u{20}        download time vs bundle size\n\
         plan     --mu KBPS --r R --u S --file LAMBDA:SIZE [--file ...]\n\
         \u{20}        partition a catalog into bundles (greedy optimizer)\n\
         simulate --lambda R --size KB --mu KBPS --on S --off S [--m N]\n\
         \u{20}        [--horizon S] [--reps N] flow-level simulation"
    );
    ExitCode::from(2)
}

/// Parse `--key value` flags (value-less flags get "true") and repeated
/// `--file` entries.
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            let value_next = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
            match (key, value_next) {
                ("file", Some(v)) => {
                    files.push(v);
                    i += 2;
                }
                (_, Some(v)) => {
                    flags.insert(key.to_string(), v);
                    i += 2;
                }
                (_, None) => {
                    flags.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    (flags, files)
}

fn need(flags: &HashMap<String, String>, key: &str) -> Result<f64, String> {
    flags
        .get(key)
        .ok_or(format!("missing --{key}"))?
        .parse()
        .map_err(|e| format!("--{key}: {e}"))
}

fn opt(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        None => Ok(default),
    }
}

fn swarm_from_flags(flags: &HashMap<String, String>) -> Result<SwarmParams, String> {
    Ok(SwarmParams {
        lambda: need(flags, "lambda")?,
        size: need(flags, "size")?,
        mu: need(flags, "mu")?,
        r: need(flags, "r")?,
        u: need(flags, "u")?,
    })
}

fn cmd_model(flags: &HashMap<String, String>, json: bool) -> Result<(), String> {
    let p = swarm_from_flags(flags)?;
    let eb = impatient::busy_period(&p);
    let unavail = impatient::unavailability(&p);
    let t = patient::download_time(&p);
    let w = patient::waiting_time(&p);
    if json {
        println!(
            "{}",
            serde_json::json!({
                "params": p,
                "busy_period": eb,
                "unavailability": unavail,
                "download_time": t,
                "waiting_time": w,
            })
        );
    } else {
        println!(
            "swarm: λ={} s={} kB μ={} kB/s r={} u={} s",
            p.lambda, p.size, p.mu, p.r, p.u
        );
        println!("  expected availability period E[B] = {eb:.1} s");
        println!("  unavailability                   P = {unavail:.6}");
        println!("  mean download time (patient)  E[T] = {t:.1} s");
        println!("    waiting component                = {w:.1} s");
    }
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>, json: bool) -> Result<(), String> {
    let p = swarm_from_flags(flags)?;
    let kmax = opt(flags, "kmax", 10.0)? as u32;
    let scaling = match flags.get("scaling").map(String::as_str) {
        None | Some("fixed") => PublisherScaling::Fixed,
        Some("proportional") => PublisherScaling::Proportional,
        Some(other) => return Err(format!("unknown --scaling {other}")),
    };
    let ks: Vec<u32> = (1..=kmax.max(1)).collect();
    let points = sweep(&p, scaling, &ks);
    let (k_opt, t_opt) = optimal_bundle_size(&p, scaling, kmax.max(1));
    if json {
        println!(
            "{}",
            serde_json::json!({ "points": points, "k_opt": k_opt, "t_opt": t_opt })
        );
    } else {
        println!("{:>4} {:>14} {:>14}", "K", "E[T] (s)", "P");
        for pt in &points {
            let marker = if pt.k == k_opt { " <- optimal" } else { "" };
            println!(
                "{:>4} {:>14.1} {:>14.6}{marker}",
                pt.k, pt.download_time, pt.unavailability
            );
        }
    }
    Ok(())
}

fn cmd_plan(
    flags: &HashMap<String, String>,
    file_specs: &[String],
    json: bool,
) -> Result<(), String> {
    if file_specs.is_empty() {
        return Err("need at least one --file LAMBDA:SIZE".into());
    }
    let files: Vec<CatalogFile> = file_specs
        .iter()
        .map(|s| {
            let (l, sz) = s
                .split_once(':')
                .ok_or(format!("--file must be LAMBDA:SIZE, got {s}"))?;
            Ok(CatalogFile {
                lambda: l.parse().map_err(|e| format!("--file lambda: {e}"))?,
                size: sz.parse().map_err(|e| format!("--file size: {e}"))?,
            })
        })
        .collect::<Result<_, String>>()?;
    let env = Environment {
        mu: need(flags, "mu")?,
        r: need(flags, "r")?,
        u: need(flags, "u")?,
    };
    let singletons: Vec<Vec<usize>> = (0..files.len()).map(|i| vec![i]).collect();
    let t_single = evaluate_partition(&files, &singletons, env);
    let plan = greedy_partition(&files, env);
    let t_plan = evaluate_partition(&files, &plan, env);
    if json {
        println!(
            "{}",
            serde_json::json!({
                "partition": plan,
                "weighted_download_time": t_plan,
                "no_bundling_time": t_single,
            })
        );
    } else {
        println!("no bundling: demand-weighted E[T] = {t_single:.1} s");
        println!("greedy plan: demand-weighted E[T] = {t_plan:.1} s");
        for (i, b) in plan.iter().enumerate() {
            let lam: f64 = b.iter().map(|&i| files[i].lambda).sum();
            let size: f64 = b.iter().map(|&i| files[i].size).sum();
            println!("  bundle {i}: files {b:?} (Λ={lam:.4}/s, S={size:.0} kB)");
        }
    }
    Ok(())
}

fn cmd_simulate(flags: &HashMap<String, String>, json: bool) -> Result<(), String> {
    let cfg = SimConfig {
        lambda: need(flags, "lambda")?,
        service: ServiceModel::Exponential {
            mean: need(flags, "size")? / need(flags, "mu")?,
        },
        publisher: PublisherProcess::SingleOnOff {
            on_mean: need(flags, "on")?,
            off_mean: need(flags, "off")?,
            initially_on: true,
        },
        patience: Patience::Patient,
        linger_mean: None,
        coverage_threshold: opt(flags, "m", 0.0)? as usize,
        horizon: opt(flags, "horizon", 100_000.0)?,
        warmup: opt(flags, "warmup", 2_000.0)?,
        seed: opt(flags, "seed", 42.0)? as u64,
        record_timeline: false,
    };
    let reps = opt(flags, "reps", 5.0)? as usize;
    let rep = replicate(&cfg, reps.max(1), num_threads());
    let ci = rep.download_time_ci(0.95);
    if json {
        println!(
            "{}",
            serde_json::json!({
                "mean_download_time": rep.pooled.mean_download_time(),
                "ci_low": ci.lo(),
                "ci_high": ci.hi(),
                "availability": rep.pooled.availability,
                "completions": rep.pooled.completions,
                "arrivals": rep.pooled.arrivals,
            })
        );
    } else {
        println!(
            "simulated {} replications: mean download {:.1} s (95% CI [{:.1}, {:.1}])",
            rep.replications,
            rep.pooled.mean_download_time(),
            ci.lo(),
            ci.hi()
        );
        println!(
            "availability {:.3}, {} completions / {} arrivals",
            rep.pooled.availability, rep.pooled.completions, rep.pooled.arrivals
        );
    }
    Ok(())
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
