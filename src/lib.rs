//! # swarmsys
//!
//! Content availability and bundling in swarming systems — a Rust
//! implementation of the models, simulators and measurement tooling of
//! *"Content Availability and Bundling in Swarming Systems"* (Menasche,
//! Rocha, Li, Towsley, Venkataramani — CoNEXT 2009).
//!
//! BitTorrent-style swarming scales beautifully with popularity but fails
//! on *availability*: unpopular content disappears whenever no seed is
//! online. The paper models availability periods as busy periods of an
//! M/G/∞ queue and shows that **bundling** K files multiplies both demand
//! and per-peer residence by K, growing availability periods by
//! `e^Θ(K²)` — enough that, for rarely-seeded content, peers download
//! *more* data in *less* time.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`stats`] — statistics substrate (summaries, quantiles, ECDFs,
//!   confidence intervals, ASCII rendering);
//! * [`queue`] — M/G/∞ theory: busy periods with exceptional initiators
//!   (Browne–Steele), residual busy periods, Monte-Carlo validation;
//! * [`model`] — **the paper's contribution**: availability and download
//!   time under impatient/patient peers, coverage thresholds, altruistic
//!   lingering, Zipf demand, bundling analysis and the fluid baseline;
//! * [`sim`] — flow-level discrete-event swarm simulator;
//! * [`bt`] — block-level BitTorrent-like engine (pieces, bitfields,
//!   rarest-first, choking, tracker/PEX);
//! * [`measurement`] — synthetic Mininova-scale measurement study.
//!
//! ## Quick start
//!
//! ```
//! use swarmsys::model::params::{PublisherScaling, SwarmParams};
//! use swarmsys::model::{impatient, patient};
//!
//! // An unpopular 4 MB file: a peer every 150 s, a publisher that
//! // reappears every ~3 hours and stays 5 minutes.
//! let file = SwarmParams {
//!     lambda: 1.0 / 150.0,
//!     size: 4_000.0,
//!     mu: 50.0,
//!     r: 1.0 / 10_000.0,
//!     u: 300.0,
//! };
//!
//! // Bundling 5 such files slashes unavailability...
//! let bundle = file.bundle(5, PublisherScaling::Fixed);
//! assert!(impatient::unavailability(&bundle) < impatient::unavailability(&file) / 10.0);
//!
//! // ...and this publisher is rare enough that peers also finish sooner,
//! // despite downloading 5x the bytes.
//! assert!(patient::download_time(&bundle) < patient::download_time(&file));
//! ```
//!
//! ## Reproduction
//!
//! Every table and figure of the paper regenerates via the `repro` binary
//! in the `swarm-bench` crate:
//!
//! ```text
//! cargo run --release -p swarm-bench --bin repro -- all
//! ```

/// Statistics substrate (re-export of `swarm-stats`).
pub use swarm_stats as stats;

/// M/G/∞ queueing theory (re-export of `swarm-queue`).
pub use swarm_queue as queue;

/// The paper's availability and bundling models (re-export of
/// `swarm-core`).
pub use swarm_core as model;

/// Flow-level discrete-event simulator (re-export of `swarm-sim`).
pub use swarm_sim as sim;

/// Block-level BitTorrent-like engine (re-export of `swarm-bt`).
pub use swarm_bt as bt;

/// Live networked swarm mode (re-export of `swarm-net`).
pub use swarm_net as net;

/// Synthetic measurement study (re-export of `swarm-measurement`).
pub use swarm_measurement as measurement;

pub use swarm_core::params::{PublisherScaling, SwarmParams};
