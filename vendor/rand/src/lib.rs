//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`RngCore`], [`Rng`],
//! [`SeedableRng`] and [`seq::SliceRandom`]. Algorithms are deliberately
//! simple (modulo ranges, 53-bit float conversion, Fisher-Yates
//! shuffles) — the workspace only needs deterministic, well-distributed
//! streams, not compatibility with upstream `rand` value sequences.
//!
//! The modulo reduction itself is div-free for small spans: integer
//! `gen_range` is the hottest instruction sequence in the `swarm-bt`
//! engine (hundreds of thousands of shuffle/tie-break draws per run,
//! each one `next_u64() % span` = a 64-bit hardware divide), so
//! [`range_rem`] replaces the divide with an exact Lemire–Kaser
//! reciprocal multiply off a precomputed magic table. The reduction is
//! bit-for-bit the same `x % span` — golden-trace artifacts pin the
//! draw values, so only the instruction sequence may change, never the
//! result.

use std::fmt;

/// Error type for fallible RNG operations (API compatibility; the
/// vendored generators are infallible).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible fill (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values the [`Rng::gen`] method can produce.
pub trait Standard: Sized {
    /// Draw one value from the "standard" distribution for the type
    /// (uniform over the value range; `[0, 1)` for floats).
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Largest span served by the precomputed reciprocal table. Engine-hot
/// draws are tiny spans (Fisher-Yates counters, slot indices, tie
/// reservoirs), so a small table covers essentially every hot call;
/// larger spans fall back to the hardware divide.
const REM_TABLE: usize = 1024;

/// `ceil(2^128 / d) mod 2^128` for `d = index + 1`. `u128::MAX / d + 1`
/// equals the ceiling for every `d` (exact when `d` divides `2^128`,
/// i.e. powers of two, and one past the floor otherwise — both are the
/// ceiling). For `d = 1` the ceiling is `2^128` itself, which wraps to
/// `0` — and a zero magic still reduces correctly, since `x % 1` is
/// always `0`.
static REM_MAGIC: [u128; REM_TABLE] = {
    let mut t = [0u128; REM_TABLE];
    let mut i = 0usize;
    while i < REM_TABLE {
        t[i] = (u128::MAX / (i as u128 + 1)).wrapping_add(1);
        i += 1;
    }
    t
};

/// Exactly `x % span`, without a 64-bit divide when `span` is small.
///
/// Lemire–Kaser "fastmod": with `c = ceil(2^128 / d)`, the remainder of
/// any `x < 2^64` by `d` is the high 128 bits of `(c·x mod 2^128) · d`.
/// Writing `x = q·d + r` and `c·d = 2^128 + e` (`0 ≤ e < d`), the low
/// bits come to `q·e + c·r`, and multiplying back by `d` gives
/// `2^128·r + e·x` — the high half is `r` exactly, because `e·x <
/// d·2^64 ≪ 2^128` for every tabled `d`. No approximation anywhere;
/// `fast_rem_matches_divide` sweeps the full table against `%`.
///
/// `span == 0` takes the fallback divide and panics exactly like the
/// plain `%` did.
#[inline]
fn range_rem(x: u64, span: u64) -> u64 {
    if ((span as usize).wrapping_sub(1)) < REM_TABLE {
        let c = REM_MAGIC[(span - 1) as usize];
        let low = c.wrapping_mul(x as u128);
        let carry = ((low as u64 as u128) * span as u128) >> 64;
        (((low >> 64) * span as u128 + carry) >> 64) as u64
    } else {
        x % span
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type
/// (like upstream rand) so integer literals infer from the use site.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + range_rem(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64 + 1;
                start + range_rem(rng.next_u64(), span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(range_rem(rng.next_u64(), span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i64).wrapping_sub(start as i64) as u64 + 1;
                (start as i64).wrapping_add(range_rem(rng.next_u64(), span) as i64) as $t
            }
        }
    )*};
}

signed_range!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::random(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (the same
    /// scheme upstream `rand` documents for `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Hot loop (the swarm engine shuffles every transfer round):
            // reduce the draw directly — same value as
            // `gen_range(0..=i)` without the range plumbing — and swap
            // through raw pointers; `j <= i < len` makes the accesses
            // trivially in bounds, and the checked swap's four bounds
            // tests were measurable at this call rate.
            let p = self.as_mut_ptr();
            for i in (1..self.len()).rev() {
                let j = super::range_rem(rng.next_u64(), i as u64 + 1) as usize;
                // SAFETY: `i < len` from the loop range and `j <= i`.
                unsafe { std::ptr::swap(p.add(i), p.add(j)) };
            }
        }
    }
}

/// Distribution trait (`rand::distributions`); `rand_distr` builds on it.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn fast_rem_matches_divide() {
        // The reciprocal-multiply reduction must be exactly `%` for the
        // whole magic table — golden traces pin every draw value. Sweep
        // every tabled span against edge and random dividends, plus a
        // few beyond-table spans that take the divide fallback.
        let mut rng = Lcg(0x5eed);
        for span in 1..=(REM_TABLE as u64 + 8) {
            for x in [
                0,
                1,
                span - 1,
                span,
                span + 1,
                u64::MAX,
                u64::MAX - 1,
                u64::MAX / 2,
            ] {
                assert_eq!(range_rem(x, span), x % span, "x={x} span={span}");
            }
            for _ in 0..64 {
                let x = rng.next_u64();
                assert_eq!(range_rem(x, span), x % span, "x={x} span={span}");
            }
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Lcg(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
