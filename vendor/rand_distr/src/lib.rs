//! Offline vendored stand-in for `rand_distr`: the exponential and normal
//! samplers the workspace uses, over the vendored `rand` traits.

use rand::{Rng, RngCore};
use std::fmt;

pub use rand::distributions::Distribution;

/// Invalid-parameter error shared by the samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Exp, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0).
        -(1.0 - rng.gen::<f64>()).ln() / self.lambda
    }
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// `std_dev` must be nonnegative and finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, ParamError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError("Normal std_dev must be nonnegative and finite"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method, stateless variant (one deviate per call).
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn exp_mean_converges() {
        let d = Exp::new(0.25).unwrap();
        let mut rng = Lcg(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = Lcg(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
