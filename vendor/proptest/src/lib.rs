//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! `prop::collection::vec` / `prop::bool::ANY` strategies, `prop_map`,
//! and the `prop_assert*` / `prop_assume!` macros. No shrinking: a
//! failing case panics with its inputs' debug representation via the
//! assertion message, which is enough to reproduce (generation is
//! deterministic per test name and case index).

use std::ops::Range;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — draw a fresh case.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }

    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` names the filter in
    /// the giving-up panic.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            inner: self,
            whence,
            pred,
        }
    }

    /// Derive a dependent strategy from each generated value (e.g. a
    /// length first, then collections of that length).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// `Strategy` behind a reference, so strategies can be reused by value
/// expressions evaluated once per case.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMapStrategy<S, F> {
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 draws in a row",
            self.whence
        );
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
    )*};
}

signed_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Vectors with element strategy `elem` and length drawn
        /// uniformly from `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from a fixed candidate list.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "empty select strategy");
            Select { options }
        }

        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() % self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }

    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniform over `{true, false}`.
        pub struct Any;

        /// `prop::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Driver used by the expansion of [`proptest!`]: runs accepted cases
/// until `config.cases` pass, retrying rejected draws.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Deterministic base seed per test name, so failures reproduce.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }

    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 5000;
    while accepted < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "proptest `{test_name}`: too many rejected cases \
                 ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::new(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` failed at attempt {attempts} \
                     (accepted {accepted}): {msg}"
                );
            }
        }
    }
}

/// Define property tests. Supports the upstream surface the workspace
/// uses: an optional `#![proptest_config(...)]` header and `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
        $crate::__proptest_body!(($cfg) $($rest)*);
    };
}

/// Assert inside a proptest body; failure fails the case (not a panic
/// mid-generation).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0u32..10, 2..8)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 8);
            for &x in &xs {
                prop_assert!(x < 10, "x = {x}");
            }
        }

        #[test]
        fn assume_rejects(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn map_and_tuples(cfg in (0u32..5, prop::bool::ANY).prop_map(|(n, flag)| (n * 2, flag))) {
            prop_assert_eq!(cfg.0 % 2, 0);
        }
    }
}
