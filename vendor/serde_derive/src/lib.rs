//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! A syn-free derive: the item is parsed directly from its `TokenTree`s
//! (the workspace only derives on plain non-generic structs and enums),
//! and the impl is emitted as source text parsed back into a
//! `TokenStream`. Supports named structs, tuple structs, and enums with
//! unit / tuple / struct variants, plus the `#[serde(skip)]` and
//! `#[serde(default)]` field attributes (`default` fills a missing
//! field from `Default::default()` on deserialize — the
//! backward-compatibility knob for evolving on-disk formats). Anything
//! fancier fails with a clear `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---------------------------------------------------------------- parsing

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// Field-level `#[serde(...)]` switches recognized by this derive.
#[derive(Default, Clone, Copy)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            toks: stream.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("serde derive: expected {what}, found {other:?}")),
        }
    }

    /// Skip leading attributes (`#[...]`, including expanded doc
    /// comments); report which `#[serde(...)]` switches were present.
    fn skip_attrs(&mut self) -> Result<FieldAttrs, String> {
        let mut attrs = FieldAttrs::default();
        while self.is_punct('#') {
            self.bump();
            match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let found = parse_serde_attr(&g.stream())?;
                    attrs.skip |= found.skip;
                    attrs.default |= found.default;
                }
                other => return Err(format!("serde derive: malformed attribute: {other:?}")),
            }
        }
        Ok(attrs)
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if self.is_ident("pub") {
            self.bump();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.bump();
            }
        }
    }
}

fn parse_serde_attr(stream: &TokenStream) -> Result<FieldAttrs, String> {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let is_serde = matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return Ok(FieldAttrs::default()); // doc comment or foreign attribute
    }
    if let Some(TokenTree::Group(args)) = toks.get(1) {
        let mut attrs = FieldAttrs::default();
        for t in args.stream() {
            if let TokenTree::Ident(id) = &t {
                match id.to_string().as_str() {
                    "skip" => attrs.skip = true,
                    "default" => attrs.default = true,
                    other => {
                        return Err(format!(
                            "serde derive (vendored): unsupported serde attribute `{other}` \
                             (only `skip` and `default` are implemented)"
                        ))
                    }
                }
            }
        }
        return Ok(attrs);
    }
    Err("serde derive: malformed #[serde(...)] attribute".to_string())
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs()?;
    c.skip_vis();
    let kind = c.expect_ident("`struct` or `enum`")?;
    let name = c.expect_ident("type name")?;
    if c.is_punct('<') {
        return Err(format!(
            "serde derive (vendored): generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Struct(Fields::Named(parse_named_fields(g.stream())?)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                shape: Shape::Struct(Fields::Tuple(tuple_arity(g.stream()))),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::Struct(Fields::Unit),
            }),
            other => Err(format!("serde derive: unexpected struct body: {other:?}")),
        },
        "enum" => match c.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("serde derive: unexpected enum body: {other:?}")),
        },
        other => Err(format!(
            "serde derive: expected struct or enum, found `{other}`"
        )),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.skip_attrs()?;
        c.skip_vis();
        let name = c.expect_ident("field name")?;
        if !c.is_punct(':') {
            return Err(format!("serde derive: expected `:` after field `{name}`"));
        }
        c.bump();
        // Consume the type: everything up to a comma at angle-bracket
        // depth zero (commas inside `Vec<(u64, u64)>` etc. don't count;
        // parens/brackets are whole Groups so only `<`/`>` need tracking).
        let mut depth = 0i32;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    c.bump();
                    break;
                }
                _ => {}
            }
            c.bump();
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    Ok(fields)
}

fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut saw_token = false;
    let mut trailing_comma = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        saw_token = true;
        trailing_comma = false;
    }
    if !saw_token {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs()?;
        let name = c.expect_ident("variant name")?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                c.bump();
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                c.bump();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        if c.is_punct('=') {
            return Err(format!(
                "serde derive (vendored): discriminant on variant `{name}` not supported"
            ));
        }
        if c.is_punct(',') {
            c.bump();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

const SER: &str = "::serde::Serialize::serialize_value";
const DE: &str = "::serde::Deserialize::deserialize_value";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut map = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                let fname = &f.name;
                s.push_str(&format!(
                    "map.insert(::std::string::String::from(\"{fname}\"), {SER}(&self.{fname}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(map)");
            s
        }
        Shape::Struct(Fields::Tuple(1)) => format!("{SER}(&self.0)"),
        Shape::Struct(Fields::Tuple(n)) => {
            let mut s = String::from("let mut arr = ::std::vec::Vec::new();\n");
            for i in 0..*n {
                s.push_str(&format!("arr.push({SER}(&self.{i}));\n"));
            }
            s.push_str("::serde::Value::Array(arr)");
            s
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::String(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let inner = if *n == 1 {
                            format!("{SER}(__f0)")
                        } else {
                            let mut a = String::from("{ let mut arr = ::std::vec::Vec::new();\n");
                            for b in &binders {
                                a.push_str(&format!("arr.push({SER}({b}));\n"));
                            }
                            a.push_str("::serde::Value::Array(arr) }");
                            a
                        };
                        s.push_str(&format!(
                            "{name}::{vname}({pat}) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from(\"{vname}\"), {inner});\n\
                             ::serde::Value::Object(map)\n}}\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let pat = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            let fname = &f.name;
                            inner.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{fname}\"), \
                                 {SER}({fname}));\n"
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => {{\n{inner}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n}}\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                if f.skip {
                    inits.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
                } else if f.default {
                    inits.push_str(&format!(
                        "{fname}: match obj.get(\"{fname}\") {{\n\
                         ::core::option::Option::Some(v) => {DE}(v)?,\n\
                         ::core::option::Option::None => ::core::default::Default::default(),\n\
                         }},\n"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{fname}: {DE}(obj.get(\"{fname}\").ok_or_else(|| \
                         ::serde::DeError::new(\"{name}: missing field `{fname}`\"))?)?,\n"
                    ));
                }
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"{name}: expected object\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::core::result::Result::Ok({name}({DE}(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let gets: Vec<String> = (0..*n).map(|i| format!("{DE}(&arr[{i}])?")).collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"{name}: expected array\"))?;\n\
                 if arr.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::DeError::new(\"{name}: wrong tuple length\")); }}\n\
                 ::core::result::Result::Ok({name}({gets}))",
                gets = gets.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}({DE}(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let gets: Vec<String> =
                            (0..*n).map(|i| format!("{DE}(&arr[{i}])?")).collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}::{vname}: expected array\"))?;\n\
                             if arr.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::DeError::new(\"{name}::{vname}: wrong arity\")); }}\n\
                             ::core::result::Result::Ok({name}::{vname}({gets}))\n}}\n",
                            gets = gets.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let fname = &f.name;
                            if f.skip {
                                inits.push_str(&format!(
                                    "{fname}: ::core::default::Default::default(),\n"
                                ));
                            } else if f.default {
                                inits.push_str(&format!(
                                    "{fname}: match obj.get(\"{fname}\") {{\n\
                                     ::core::option::Option::Some(v) => {DE}(v)?,\n\
                                     ::core::option::Option::None => \
                                     ::core::default::Default::default(),\n\
                                     }},\n"
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{fname}: {DE}(obj.get(\"{fname}\").ok_or_else(|| \
                                     ::serde::DeError::new(\"{name}::{vname}: missing field \
                                     `{fname}`\"))?)?,\n"
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let obj = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}::{vname}: expected object\"))?;\n\
                             ::core::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 _ => ::core::result::Result::Err(::serde::DeError::new(\
                 \"{name}: unknown variant\")),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (k, inner) = m.iter().next().expect(\"len-1 map\");\n\
                 let _ = inner;\n\
                 match k.as_str() {{\n{data_arms}\
                 _ => ::core::result::Result::Err(::serde::DeError::new(\
                 \"{name}: unknown variant\")),\n}}\n}}\n\
                 _ => ::core::result::Result::Err(::serde::DeError::new(\
                 \"{name}: expected string or single-key object\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
