//! Offline vendored stand-in for `criterion`.
//!
//! A wall-clock benchmarking harness covering the API the workspace's
//! benches use: `Criterion`, `benchmark_group` + `sample_size` +
//! `finish`, `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Each run
//! prints per-benchmark timings and writes a machine-readable JSON
//! summary to `$CRITERION_JSON_DIR` (default `target/criterion-json/`).

use std::time::{Duration, Instant};

/// Re-export of the compiler fence against over-optimization.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for `iter_batched` (the vendored harness runs one
/// setup per measured call regardless, so this is informational).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: u32,
    iters_per_sample: u64,
}

/// Collects measurements; writes the JSON summary when dropped.
pub struct Criterion {
    sample_size: u32,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Benchmark a routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnOnce(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    /// Start a named group; benchmarks inside get `name/`-prefixed ids.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            sample_size: None,
        }
    }

    fn run_one<F>(&mut self, name: String, sample_size: u32, f: F)
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            requested_samples: sample_size,
            measurement: None,
        };
        f(&mut bencher);
        let Some(m) = bencher.measurement else {
            eprintln!("warning: benchmark `{name}` measured nothing");
            return;
        };
        println!(
            "{name:<40} time: [{} .. mean {} .. {}]  ({} samples x {} iters)",
            fmt_ns(m.min_ns),
            fmt_ns(m.mean_ns),
            fmt_ns(m.max_ns),
            m.samples,
            m.iters_per_sample,
        );
        self.records.push(BenchRecord {
            name,
            mean_ns: m.mean_ns,
            min_ns: m.min_ns,
            max_ns: m.max_ns,
            samples: m.samples,
            iters_per_sample: m.iters_per_sample,
        });
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if self.records.is_empty() {
            return;
        }
        let dir = std::env::var("CRITERION_JSON_DIR")
            .unwrap_or_else(|_| "target/criterion-json".to_string());
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let stem = bench_binary_stem();
        let mut json = String::from("{\n  \"benchmarks\": {\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "    {:?}: {{\"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
                 \"samples\": {}, \"iters_per_sample\": {}}}",
                r.name, r.mean_ns, r.min_ns, r.max_ns, r.samples, r.iters_per_sample
            ));
        }
        json.push_str("\n  }\n}\n");
        let path = format!("{dir}/{stem}.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote benchmark summary to {path}");
        }
    }
}

/// Strip cargo's `-<hash>` suffix from the bench executable name.
fn bench_binary_stem() -> String {
    let exe = std::env::args().next().unwrap_or_else(|| "bench".into());
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, suffix))
            if suffix.len() == 16 && suffix.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A benchmark group: shared id prefix and optional sample-size override.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
    sample_size: Option<u32>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let name = format!("{}/{}", self.prefix, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(name, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: u32,
    iters_per_sample: u64,
}

/// Handed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    requested_samples: u32,
    measurement: Option<Measurement>,
}

/// Per-sample time budget for fast routines; slow routines (one
/// iteration exceeds this) get one iteration per sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(50);
/// Soft cap on a single benchmark's total measuring time; the sample
/// count shrinks (to at least 3) for very slow routines.
const TARGET_TOTAL: Duration = Duration::from_secs(20);

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();

        let iters = iters_per_sample(once);
        let samples = sample_count(self.requested_samples, once, iters);
        let mut times = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(times, iters);
    }

    /// Time `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed();

        let iters = iters_per_sample(once);
        let samples = sample_count(self.requested_samples, once, iters);
        let mut times = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs.drain(..) {
                black_box(routine(input));
            }
            times.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(times, iters);
    }

    fn record(&mut self, times: Vec<f64>, iters: u64) {
        let n = times.len().max(1) as f64;
        let mean = times.iter().sum::<f64>() / n;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0f64, f64::max);
        self.measurement = Some(Measurement {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: times.len() as u32,
            iters_per_sample: iters,
        });
    }
}

fn iters_per_sample(once: Duration) -> u64 {
    if once.is_zero() {
        return 1000;
    }
    (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64
}

fn sample_count(requested: u32, once: Duration, iters: u64) -> u32 {
    let per_sample = once.as_nanos().max(1) as u64 * iters;
    let fit = (TARGET_TOTAL.as_nanos() as u64 / per_sample.max(1)).clamp(3, u64::from(requested));
    fit as u32
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`/filter arguments; the
            // vendored harness runs everything regardless.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].mean_ns > 0.0);
        c.records.clear(); // don't write JSON from unit tests
    }

    #[test]
    fn batched_runs_setup_per_input() {
        let mut c = Criterion::default();
        c.bench_function("rev", |b| {
            b.iter_batched(
                || (0..100u32).collect::<Vec<_>>(),
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            );
        });
        assert_eq!(c.records.len(), 1);
        c.records.clear();
    }
}
