//! Offline vendored stand-in for `serde_json`.
//!
//! The [`Value`] tree, parser and printers live in the vendored `serde`
//! crate (so derive macros can reference one crate); this crate adds the
//! `serde_json` entry points the workspace calls plus the [`json!`]
//! macro.

pub use serde::{Map, Number, Value};

use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error { msg: e.to_string() }
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value).map_err(Error::from)
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_json_string())
}

/// Pretty JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_json_string_pretty())
}

/// Parse JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = Value::parse_str(s).map_err(Error::from)?;
    from_value(v)
}

/// Build a [`Value`] from a JSON-like literal, `serde_json` style:
/// object/array literals, `null`/`true`/`false`, and arbitrary
/// serializable Rust expressions in value position.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////////// array munching ////////////////////////
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////// object munching ////////////////////////
    // Done.
    (@object $object:ident () () ()) => {};
    // Insert the current entry, trailing comma present.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    // Insert the final entry, no trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Value is `null`/`true`/`false`/array/object.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Final value expression, no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Parenthesized key expression.
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////// primary entry points ////////////////////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let curve = vec![(1u64, 2u64), (3, 4)];
        let v = json!({
            "count": 3,
            "rate": 1.5,
            "label": "x",
            "curve": curve,
            "nested": {
                "quote": "< 0.35",
            },
            "list": [1, 2.0, "three", null, true],
            "empty": {},
            "none": null,
        });
        assert_eq!(v["count"], 3);
        assert_eq!(v["rate"], 1.5);
        assert_eq!(v["label"], "x");
        assert_eq!(v["curve"][1][0], 3);
        assert_eq!(v["nested"]["quote"], "< 0.35");
        assert_eq!(v["list"].as_array().unwrap().len(), 5);
        assert!(v["none"].is_null());
    }

    #[test]
    fn string_round_trip() {
        let v = json!({"k": 1, "xs": [0.25, 0.5]});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn typed_from_value() {
        let v = json!({"curve": [[1.0, 2.0], [3.0, 4.0]]});
        let curve: Vec<(f64, f64)> = from_value(v["curve"].clone()).unwrap();
        assert_eq!(curve, vec![(1.0, 2.0), (3.0, 4.0)]);
    }
}
