//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the serde surface it uses: `#[derive(Serialize, Deserialize)]` (with
//! `#[serde(skip)]`) and JSON round-trips through `serde_json`. Instead of
//! the full serde data model, both traits convert through a single
//! in-memory [`Value`] tree — exactly what a JSON-only workspace needs.
//!
//! `Value` lives here (not in `serde_json`) so the derive macro can emit
//! `::serde::...` paths only; `serde_json` re-exports it.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON object storage. A `BTreeMap` matches upstream `serde_json`'s
/// default (sorted keys), which keeps serialized output deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Nonnegative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// As `u64` if the value is a nonnegative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }

    /// As `i64` if the value is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if !x.is_finite() {
                    // serde_json refuses non-finite floats; printing null
                    // keeps the output parseable.
                    write!(f, "null")
                } else if x == x.trunc() && x.abs() < 1e16 {
                    // Keep float-ness visible ("5.0", not "5") so the
                    // round-trip restores the same variant.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serialize compactly (no whitespace).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialize with two-space indentation, `serde_json` pretty style.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Parse a JSON document.
    pub fn parse_str(input: &str) -> Result<Value, DeError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(DeError::new("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Like `serde_json`: missing keys and non-objects yield `Null`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_num!(i32, i64, u32, u64, usize, f64, f32);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization failure: a message describing the mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<$t, DeError> {
                // Accept any numeric variant: integers round-trip as ints.
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // Non-finite floats print as null; restore as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::new("expected number")),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::new("tuple length mismatch"));
                }
                Ok(($($name::deserialize_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            None => Err(DeError::new("unexpected end of input")),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(DeError::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(DeError::new("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(DeError::new("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::new("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::new("bad \\u escape"))?;
                            // BMP only; surrogate pairs don't appear in our
                            // own output (we escape only control chars).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("invalid \\u codepoint"))?,
                            );
                        }
                        _ => return Err(DeError::new("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| DeError::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| DeError::new("invalid number"))?;
            Ok(Value::Number(Number::Float(f)))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let n: i64 = format!("-{stripped}")
                .parse()
                .map_err(|_| DeError::new("invalid integer"))?;
            Ok(Value::Number(Number::NegInt(n)))
        } else {
            let n: u64 = text.parse().map_err(|_| DeError::new("invalid integer"))?;
            Ok(Value::Number(Number::PosInt(n)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#;
        let v = Value::parse_str(src).unwrap();
        let printed = v.to_json_string();
        let v2 = Value::parse_str(&printed).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"], "x\ny");
        assert!(v["c"].is_null());
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn floats_keep_floatness() {
        let v = 5.0f64.serialize_value();
        assert_eq!(v.to_json_string(), "5.0");
        let back = Value::parse_str("5.0").unwrap();
        assert_eq!(f64::deserialize_value(&back).unwrap(), 5.0);
    }

    #[test]
    fn integers_keep_precision() {
        let big = u64::MAX - 3;
        let v = big.serialize_value();
        let back = Value::parse_str(&v.to_json_string()).unwrap();
        assert_eq!(u64::deserialize_value(&back).unwrap(), big);
    }

    #[test]
    fn tuples_and_options() {
        let x: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let v = x.serialize_value();
        let y: Vec<(u64, f64)> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(x, y);

        let none: Option<u64> = None;
        assert!(none.serialize_value().is_null());
        let some: Option<u64> = Some(7);
        let r: Option<u64> = Deserialize::deserialize_value(&some.serialize_value()).unwrap();
        assert_eq!(r, Some(7));
    }

    #[test]
    fn pretty_matches_shape() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Number(Number::PosInt(1)));
        let v = Value::Object(m);
        assert_eq!(v.to_json_string_pretty(), "{\n  \"k\": 1\n}");
    }
}
