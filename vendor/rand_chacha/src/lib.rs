//! Offline vendored ChaCha8 random number generator.
//!
//! A genuine ChaCha stream cipher core with 8 double-rounds, exposed via
//! the vendored `rand` traits. The keystream is deterministic per seed —
//! the only property the simulators rely on. (Word sequences are not
//! guaranteed to match upstream `rand_chacha`, which the workspace never
//! depended on for stored artifacts.)

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// ChaCha with 8 double-rounds, seeded by 32 key bytes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` forces a refill.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // 8 rounds total: 4 column+diagonal double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
