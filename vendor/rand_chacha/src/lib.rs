//! Offline vendored ChaCha8 random number generator.
//!
//! A genuine ChaCha stream cipher core with 8 double-rounds, exposed via
//! the vendored `rand` traits. The keystream is deterministic per seed —
//! the only property the simulators rely on. (Word sequences are not
//! guaranteed to match upstream `rand_chacha`, which the workspace never
//! depended on for stored artifacts.)
//!
//! The generator buffers four blocks per refill: on x86_64 a 4-wide
//! SSE2 kernel computes them in parallel (lane `j` of every state
//! vector belongs to block `counter + j`), elsewhere a scalar loop
//! produces the same four blocks. Either way the buffered word sequence
//! is exactly the concatenation of sequential single blocks, so the
//! keystream — which golden traces pin — is unchanged by the batching.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// Blocks computed per refill; the 4-wide SSE2 kernel fills all of them
/// in one pass.
const BATCH_BLOCKS: usize = 4;
const BUF_WORDS: usize = BLOCK_WORDS * BATCH_BLOCKS;

/// ChaCha with 8 double-rounds, seeded by 32 key bytes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` forces a refill.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Initial block state for block `counter`: constants, key, 64-bit
    /// counter, zero nonce.
    fn block_input(key: &[u32; 8], counter: u64) -> [u32; BLOCK_WORDS] {
        [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ]
    }

    fn refill(&mut self) {
        #[cfg(target_arch = "x86_64")]
        {
            chacha8_batch_sse2(&self.key, self.counter, &mut self.buf);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            chacha8_batch_scalar(&self.key, self.counter, &mut self.buf);
        }
        self.idx = 0;
        self.counter = self.counter.wrapping_add(BATCH_BLOCKS as u64);
    }
}

/// Scalar ChaCha8 block function — the reference the SIMD path must
/// match word-for-word (and the only path off x86_64).
fn chacha8_block_scalar(input: &[u32; BLOCK_WORDS]) -> [u32; BLOCK_WORDS] {
    let mut state = *input;
    for _ in 0..4 {
        // 8 rounds total: 4 column+diagonal double-rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (out, inp) in state.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    state
}

/// Four sequential blocks (`counter .. counter+3`, wrapping), one at a
/// time — the portable refill and the reference for the SSE2 batch.
#[cfg_attr(all(target_arch = "x86_64", not(test)), allow(dead_code))]
fn chacha8_batch_scalar(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    for j in 0..BATCH_BLOCKS {
        let input = ChaCha8Rng::block_input(key, counter.wrapping_add(j as u64));
        out[j * BLOCK_WORDS..(j + 1) * BLOCK_WORDS].copy_from_slice(&chacha8_block_scalar(&input));
    }
}

/// Four ChaCha8 blocks in one pass over SSE2 lanes, transposed: state
/// vector `i` holds word `i` of blocks `counter .. counter+3`, so every
/// quarter-round instruction advances all four blocks at once and no
/// lane shuffling is needed inside the rounds (unlike a single-block
/// SIMD layout, which must rotate rows into diagonal position). A final
/// 4×4 transpose per vector group lays the words out block-sequential,
/// making the output exactly [`chacha8_batch_scalar`] (pinned by the
/// `simd_matches_scalar` test) — ChaCha is pure 32-bit add/xor/rotate
/// arithmetic, so lane order is the only thing the vectorization
/// touches. SSE2 is part of the x86_64 baseline, which makes the
/// intrinsics unconditionally safe to call.
#[cfg(target_arch = "x86_64")]
fn chacha8_batch_sse2(key: &[u32; 8], counter: u64, out: &mut [u32; BUF_WORDS]) {
    use std::arch::x86_64::*;
    // SAFETY: SSE2 intrinsics on x86_64 (baseline ISA); stores use
    // unaligned forms on properly sized buffers.
    unsafe {
        macro_rules! rotl {
            ($x:expr, $n:literal) => {
                _mm_or_si128(_mm_slli_epi32($x, $n), _mm_srli_epi32($x, 32 - $n))
            };
        }
        let input = ChaCha8Rng::block_input(key, counter);
        let mut state: [__m128i; BLOCK_WORDS] = [_mm_setzero_si128(); BLOCK_WORDS];
        for (i, v) in state.iter_mut().enumerate() {
            *v = _mm_set1_epi32(input[i] as i32);
        }
        // Lanes 0..4 carry counters `counter .. counter+3` (64-bit
        // wrapping add, so the low/high words are set per lane).
        let mut lo = [0u32; 4];
        let mut hi = [0u32; 4];
        for j in 0..4 {
            let c = counter.wrapping_add(j as u64);
            lo[j] = c as u32;
            hi[j] = (c >> 32) as u32;
        }
        state[12] = _mm_setr_epi32(lo[0] as i32, lo[1] as i32, lo[2] as i32, lo[3] as i32);
        state[13] = _mm_setr_epi32(hi[0] as i32, hi[1] as i32, hi[2] as i32, hi[3] as i32);
        let init = state;
        macro_rules! qr {
            ($a:literal, $b:literal, $c:literal, $d:literal) => {
                state[$a] = _mm_add_epi32(state[$a], state[$b]);
                state[$d] = rotl!(_mm_xor_si128(state[$d], state[$a]), 16);
                state[$c] = _mm_add_epi32(state[$c], state[$d]);
                state[$b] = rotl!(_mm_xor_si128(state[$b], state[$c]), 12);
                state[$a] = _mm_add_epi32(state[$a], state[$b]);
                state[$d] = rotl!(_mm_xor_si128(state[$d], state[$a]), 8);
                state[$c] = _mm_add_epi32(state[$c], state[$d]);
                state[$b] = rotl!(_mm_xor_si128(state[$b], state[$c]), 7);
            };
        }
        for _ in 0..4 {
            // Column round, then diagonal round — same word indices as
            // the scalar function, four blocks per instruction.
            qr!(0, 4, 8, 12);
            qr!(1, 5, 9, 13);
            qr!(2, 6, 10, 14);
            qr!(3, 7, 11, 15);
            qr!(0, 5, 10, 15);
            qr!(1, 6, 11, 12);
            qr!(2, 7, 8, 13);
            qr!(3, 4, 9, 14);
        }
        for (v, i) in state.iter_mut().zip(init.iter()) {
            *v = _mm_add_epi32(*v, *i);
        }
        // Transpose each group of four word-vectors into block rows:
        // after the unpack ladder, row `j` of group `g` is words
        // `4g..4g+4` of block `counter + j`.
        let p = out.as_mut_ptr() as *mut __m128i;
        for g in 0..4 {
            let (v0, v1, v2, v3) = (
                state[4 * g],
                state[4 * g + 1],
                state[4 * g + 2],
                state[4 * g + 3],
            );
            let t0 = _mm_unpacklo_epi32(v0, v1); // w0b0 w1b0 w0b1 w1b1
            let t1 = _mm_unpacklo_epi32(v2, v3); // w2b0 w3b0 w2b1 w3b1
            let t2 = _mm_unpackhi_epi32(v0, v1); // w0b2 w1b2 w0b3 w1b3
            let t3 = _mm_unpackhi_epi32(v2, v3); // w2b2 w3b2 w2b3 w3b3
            _mm_storeu_si128(p.add(g), _mm_unpacklo_epi64(t0, t1)); // block 0
            _mm_storeu_si128(p.add(4 + g), _mm_unpackhi_epi64(t0, t1)); // block 1
            _mm_storeu_si128(p.add(8 + g), _mm_unpacklo_epi64(t2, t3)); // block 2
            _mm_storeu_si128(p.add(12 + g), _mm_unpackhi_epi64(t2, t3)); // block 3
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            idx: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    // `#[inline]`: these are called from monomorphized shuffle/sample
    // loops in other crates; without the hint (and without LTO) every
    // draw would be a function call.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BUF_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words already buffered — one bounds check
        // instead of two (this is the engine's hottest RNG entry point).
        if self.idx + 2 <= BUF_WORDS {
            let lo = self.buf[self.idx] as u64;
            let hi = self.buf[self.idx + 1] as u64;
            self.idx += 2;
            return (hi << 32) | lo;
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_matches_scalar() {
        // The SSE2 batch must reproduce the scalar keystream
        // word-for-word: every stored artifact (golden traces, bench
        // baselines) pins the exact stream. Cover ordinary counters and
        // the 64-bit carry/wrap edges the per-lane counter math hits.
        let rng = ChaCha8Rng::seed_from_u64(0xfeed);
        for counter in [0u64, 1, 2, 0xffff_fffd, 0xffff_ffff, u64::MAX - 2, u64::MAX] {
            let mut simd = [0u32; BUF_WORDS];
            let mut scalar = [0u32; BUF_WORDS];
            chacha8_batch_sse2(&rng.key, counter, &mut simd);
            chacha8_batch_scalar(&rng.key, counter, &mut scalar);
            assert_eq!(simd, scalar, "counter {counter}");
        }
        // And across many sequential batches of a second seed.
        let rng = ChaCha8Rng::seed_from_u64(9_999);
        for i in 0..256 {
            let counter = i as u64 * BATCH_BLOCKS as u64;
            let mut simd = [0u32; BUF_WORDS];
            let mut scalar = [0u32; BUF_WORDS];
            chacha8_batch_sse2(&rng.key, counter, &mut simd);
            chacha8_batch_scalar(&rng.key, counter, &mut scalar);
            assert_eq!(simd, scalar, "batch {i}");
        }
    }

    #[test]
    fn batching_preserves_single_block_stream() {
        // The four-block buffer must replay the exact word sequence of
        // sequential single blocks — batching is an implementation
        // detail the keystream cannot see.
        let mut rng = ChaCha8Rng::seed_from_u64(0xabcd);
        let mut expect = Vec::new();
        for counter in 0..8u64 {
            expect.extend(chacha8_block_scalar(&ChaCha8Rng::block_input(
                &rng.key, counter,
            )));
        }
        for (i, &w) in expect.iter().enumerate() {
            assert_eq!(rng.next_u32(), w, "word {i}");
        }
    }

    #[test]
    fn next_u64_word_pairing_is_stable() {
        // next_u64's buffered fast path must consume the same two words
        // as the two-next_u32 slow path, including across a refill
        // boundary (odd idx at refill time).
        let mut a = ChaCha8Rng::seed_from_u64(31);
        let mut b = ChaCha8Rng::seed_from_u64(31);
        let _ = a.next_u32(); // misalign: one word consumed
        let _ = b.next_u32();
        for _ in 0..BUF_WORDS {
            let lo = b.next_u32() as u64;
            let hi = b.next_u32() as u64;
            assert_eq!(a.next_u64(), (hi << 32) | lo);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
