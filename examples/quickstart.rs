//! Quickstart: model a swarm, quantify its (un)availability, and see what
//! bundling buys — the paper's story in thirty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use swarmsys::model::params::{PublisherScaling, SwarmParams};
use swarmsys::model::{impatient, patient};

fn main() {
    // An unpopular 4 MB file served at 50 kB/s effective rate: one peer
    // every 2.5 minutes; the publisher reappears every ~3 hours and stays
    // 5 minutes. (Units: kB and seconds.)
    let file = SwarmParams {
        lambda: 1.0 / 150.0,
        size: 4_000.0,
        mu: 50.0,
        r: 1.0 / 10_000.0,
        u: 300.0,
    };

    println!("single file:");
    println!(
        "  expected availability period  E[B] = {:>10.0} s",
        impatient::busy_period(&file)
    );
    println!(
        "  unavailability                   P = {:>10.4}",
        impatient::unavailability(&file)
    );
    println!(
        "  mean download time (patient) E[T] = {:>10.0} s",
        patient::download_time(&file)
    );
    println!(
        "    of which waiting                 = {:>10.0} s",
        patient::waiting_time(&file)
    );

    println!();
    println!(
        "{:>3} {:>14} {:>16} {:>14}",
        "K", "P(bundle)", "E[T] bundle (s)", "vs single"
    );
    for k in [1u32, 2, 3, 4, 6, 8] {
        // Fixed scaling: the bundle gets *no more* publisher effort than
        // a single file — bundling still wins via peer self-sustainment.
        let bundle = file.bundle(k, PublisherScaling::Fixed);
        let p = impatient::unavailability(&bundle);
        let t = patient::download_time(&bundle);
        let ratio = t / patient::download_time(&file);
        println!("{k:>3} {p:>14.6} {t:>16.0} {ratio:>13.2}x");
    }

    println!();
    println!(
        "bundling {} files: peers fetch {}x the bytes in {:.0}% of the time.",
        6,
        6,
        100.0 * patient::download_time(&file.bundle(6, PublisherScaling::Fixed))
            / patient::download_time(&file)
    );
}
