//! Seedless swarms at the block level: the §4.2 experiment as a runnable
//! demo. A publisher seeds each swarm only until the first peer finishes,
//! then disappears; small bundles die, large bundles self-sustain.
//!
//! ```text
//! cargo run --release --example seedless_swarm
//! ```

use swarmsys::bt::{run, BtConfig};
use swarmsys::stats::ascii::{line_chart, Series};

fn main() {
    let mut series = Vec::new();
    for k in [1u32, 4, 8] {
        let cfg = BtConfig {
            record_timeline: true,
            horizon: 2_000,
            ..BtConfig::paper_section_4_2(k, 99)
        };
        let result = run(&cfg);
        let pub_leaves = result.publisher_intervals.first().map(|p| p.1).unwrap_or(0);
        println!("K={k}: publisher leaves at t={pub_leaves} s after the first completed download;");
        println!(
            "      {} peers served by t=2000 s; swarm last fully available at t={:?}",
            result.completion_curve.len(),
            result.last_available_tick
        );
        // Cumulative completions, sampled every 100 s.
        let curve: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let t = i * 100;
                (t as f64, result.completions_between(0, t) as f64)
            })
            .collect();
        series.push(Series::new(format!("K={k}"), curve));

        // Piece coverage after the publisher leaves tells the story.
        if let Some(&(_t, cov)) = result
            .peer_coverage_curve
            .iter()
            .find(|&&(t, _)| t == pub_leaves + 300)
        {
            println!(
                "      300 s after the publisher left, peers held {cov}/{} pieces\n",
                cfg.num_pieces()
            );
        } else {
            println!();
        }
    }
    println!(
        "{}",
        line_chart("peers served (cumulative) vs time (s)", &series, 64, 16)
    );
    println!("small bundles stall when the publisher leaves; K=8 keeps serving peers.");
}
