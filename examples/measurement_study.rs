//! A miniature Section-2 measurement study end to end: generate a
//! synthetic catalog, deploy monitoring agents for seven months, and
//! reproduce the paper's headline measurement findings.
//!
//! ```text
//! cargo run --release --example measurement_study
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use swarmsys::measurement::{
    availability_study, book_stats, bundling_extent, generate_catalog, show_case_study,
    CatalogConfig, Category,
};
use swarmsys::stats::ascii::{line_chart, Series};

fn main() {
    let catalog = generate_catalog(&CatalogConfig {
        scale: 0.004,
        seed: 2026,
    });
    println!("generated {} swarms across 9 categories\n", catalog.len());

    // (1) Content unavailability is a serious problem (Figure 1).
    let mut rng = ChaCha8Rng::seed_from_u64(2027);
    let study = availability_study(&catalog, 7, &mut rng);
    println!(
        "{}",
        line_chart(
            "CDF of per-swarm seed availability",
            &[
                Series::new("first month", study.first_month.curve(0.0, 1.0, 33)),
                Series::new("whole 7-month trace", study.whole_trace.curve(0.0, 1.0, 33)),
            ],
            60,
            14,
        )
    );
    println!(
        "always available in month 1: {:.0}% | unavailable >=80% of whole trace: {:.0}%\n",
        study.always_available_first_month() * 100.0,
        study.mostly_unavailable_whole_trace(0.2) * 100.0
    );

    // (2) Bundling is widely prevalent (§2.3.1).
    for cat in [Category::Music, Category::Tv, Category::Books] {
        let e = bundling_extent(&catalog, cat);
        println!(
            "{cat:?}: {}/{} swarms are bundles ({:.0}%)",
            e.bundles,
            e.total,
            e.bundle_fraction() * 100.0
        );
    }

    // (3) Bundled content is more available (§2.3.2).
    let mut rng = ChaCha8Rng::seed_from_u64(2028);
    let books = book_stats(&catalog, &mut rng);
    println!(
        "\nbooks: {:.0}% of all swarms had no seed vs {:.0}% of collections \
         ({:.0}% after super-collection folding)",
        books.unavailable_all * 100.0,
        books.unavailable_collections * 100.0,
        books.unavailable_collections_effective * 100.0
    );
    println!(
        "downloads: typical {:.0} vs collections {:.0}",
        books.downloads_typical, books.downloads_collections
    );

    let friends = show_case_study(52, 28.0 / 52.0, &mut rng);
    println!(
        "\n\"Friends\": {} of {} swarms available; {} of the available are bundles \
         (paper: 23 available, 21 of them bundles)",
        friends.available, friends.total, friends.available_bundles
    );
}
