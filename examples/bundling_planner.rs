//! Bundling planner: a publisher holds a catalog of files with measured
//! demand and must decide what to bundle. This is the §5 "what files make
//! good candidates for bundling" question, answered with the paper's own
//! model: sweep bundle sizes, compare per-file outcomes, and print a
//! recommendation.
//!
//! ```text
//! cargo run --release --example bundling_planner
//! ```

use swarmsys::model::bundling::{heterogeneous_bundle, optimal_bundle_size};
use swarmsys::model::params::{PublisherScaling, SwarmParams};
use swarmsys::model::patient;

fn main() {
    // The publisher's situation: they can afford to reseed every ~2 hours
    // for ~5 minutes, μ = 50 kB/s swarms.
    let (mu, r, u) = (50.0, 1.0 / 7_200.0, 300.0);

    // Scenario A: a season of twelve 90 MB episodes with equal demand —
    // how many should go into one torrent?
    println!("scenario A: homogeneous episodes (90 MB each, one peer per 10 min)");
    let episode = SwarmParams {
        lambda: 1.0 / 600.0,
        size: 90_000.0,
        mu,
        r,
        u,
    };
    println!("{:>4} {:>12} {:>14}", "K", "E[T] (s)", "per-episode");
    for k in [1u32, 2, 3, 4, 6, 8, 12] {
        let b = episode.bundle(k, PublisherScaling::Fixed);
        let t = patient::download_time(&b);
        println!("{k:>4} {t:>12.0} {:>14.0}", t / k as f64);
    }
    let (k_opt, t_opt) = optimal_bundle_size(&episode, PublisherScaling::Fixed, 12);
    println!("--> bundle {k_opt} episodes per torrent (mean download {t_opt:.0} s)\n");

    // Scenario B: a mixed catalog — one popular file, three niche ones.
    // Should the niche files ride along with the hit?
    println!("scenario B: one hit + three niche files (4 MB each)");
    let files: Vec<(f64, f64)> = vec![
        (1.0 / 30.0, 4_000.0),  // the hit: a peer every 30 s
        (1.0 / 900.0, 4_000.0), // niche
        (1.0 / 1800.0, 4_000.0),
        (1.0 / 3600.0, 4_000.0),
    ];
    let verdict = heterogeneous_bundle(&files, mu, r, u);
    println!(
        "{:>8} {:>14} {:>14} {:>8}",
        "file", "alone E[T](s)", "bundled E[T](s)", "verdict"
    );
    for (i, (&alone, &helped)) in verdict
        .individual_times
        .iter()
        .zip(&verdict.helped)
        .enumerate()
    {
        println!(
            "{:>8} {alone:>14.0} {:>14.0} {:>8}",
            format!("file {}", i + 1),
            verdict.bundle_time,
            if helped { "bundle" } else { "solo" }
        );
    }
    let winners = verdict.helped.iter().filter(|&&h| h).count();
    println!(
        "--> bundling helps {winners} of {} files; the paper's takeaway: \
         unpopular content should ride with popular content.",
        files.len()
    );
}
