//! Publisher provisioning: a content publisher wants a target
//! availability at minimum seeding cost. Compare the three levers the
//! model exposes — return more often (r), stay longer (u), or bundle (K) —
//! and find the cheapest mix, where "cost" is the expected fraction of
//! time the publisher must keep a seed online (r·u).
//!
//! ```text
//! cargo run --release --example publisher_provisioning
//! ```

use swarmsys::model::impatient;
use swarmsys::model::params::{PublisherScaling, SwarmParams};

/// Seeding duty cycle: the long-run fraction of time the publisher's own
/// machine is online (cost proxy).
fn duty_cycle(p: &SwarmParams) -> f64 {
    (p.r * p.u).min(1.0)
}

fn main() {
    let target = 0.99; // want content available for 99% of arrivals
    let base = SwarmParams {
        lambda: 1.0 / 300.0, // a peer every 5 minutes
        size: 4_000.0,
        mu: 50.0,
        r: 1.0 / 7_200.0, // currently: reappears every 2 h...
        u: 300.0,         // ...for 5 minutes
    };
    println!(
        "baseline: availability {:.3}, duty cycle {:.2}%",
        1.0 - impatient::unavailability(&base),
        duty_cycle(&base) * 100.0
    );
    println!("target:   availability {target}");
    println!();

    // Lever 1: return more often.
    let mut by_rate = base;
    while 1.0 - impatient::unavailability(&by_rate) < target {
        by_rate.r *= 1.1;
    }
    println!(
        "lever 1 - return more often : every {:>6.0} s -> duty cycle {:>6.2}%",
        1.0 / by_rate.r,
        duty_cycle(&by_rate) * 100.0
    );

    // Lever 2: stay longer per visit.
    let mut by_stay = base;
    while 1.0 - impatient::unavailability(&by_stay) < target {
        by_stay.u *= 1.1;
    }
    println!(
        "lever 2 - stay longer       : {:>8.0} s per visit -> duty cycle {:>6.2}%",
        by_stay.u,
        duty_cycle(&by_stay) * 100.0
    );

    // Lever 3: bundle — demand does the seeding for you.
    let mut chosen = None;
    for k in 2..=12u32 {
        let b = base.bundle(k, PublisherScaling::Fixed);
        if 1.0 - impatient::unavailability(&b) >= target {
            chosen = Some((k, b));
            break;
        }
    }
    match chosen {
        Some((k, b)) => println!(
            "lever 3 - bundle            : K = {k:>2} files -> duty cycle {:>6.2}% (unchanged)",
            duty_cycle(&b) * 100.0
        ),
        None => println!("lever 3 - bundle            : not reachable with K <= 12"),
    }

    println!();
    println!(
        "the paper's point: the availability a publisher buys with uptime, \
         bundling buys with e^Theta(K^2) busy-period growth - for free."
    );
}
