//! Catalog partitioning: the paper's §5 open question — "how should a
//! content provider optimally bundle files?" — answered with the greedy
//! optimizer over a synthetic back-catalog.
//!
//! ```text
//! cargo run --release --example catalog_partition
//! ```

use swarmsys::model::partition::{
    evaluate_partition, greedy_partition, local_search, CatalogFile, Environment,
};

fn main() {
    // A back-catalog: two hits, a mid-tier, and a long tail of niche
    // titles (4 MB files; λ in peers/s; kB/s capacity).
    let files: Vec<CatalogFile> = vec![
        CatalogFile {
            lambda: 1.0 / 8.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 12.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 40.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 90.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 150.0,
            size: 4_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 300.0,
            size: 2_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 600.0,
            size: 2_000.0,
        },
        CatalogFile {
            lambda: 1.0 / 900.0,
            size: 2_000.0,
        },
    ];
    let env = Environment {
        mu: 50.0,
        r: 1.0 / 20_000.0, // publisher reseeds every ~5.5 hours
        u: 300.0,
    };

    let singletons: Vec<Vec<usize>> = (0..files.len()).map(|i| vec![i]).collect();
    let everything: Vec<Vec<usize>> = vec![(0..files.len()).collect()];
    let t_single = evaluate_partition(&files, &singletons, env);
    let t_everything = evaluate_partition(&files, &everything, env);

    let greedy = greedy_partition(&files, env);
    let t_greedy = evaluate_partition(&files, &greedy, env);
    let (refined, t_refined) = local_search(&files, greedy.clone(), env, 100);

    println!("demand-weighted mean download time (s):");
    println!("  every file alone      : {t_single:>8.0}");
    println!("  one giant bundle      : {t_everything:>8.0}");
    println!("  greedy partition      : {t_greedy:>8.0}");
    println!("  + local search        : {t_refined:>8.0}");
    println!();
    println!("recommended release plan:");
    for (i, bundle) in refined.iter().enumerate() {
        let lambda: f64 = bundle.iter().map(|&i| files[i].lambda).sum();
        let size: f64 = bundle.iter().map(|&i| files[i].size).sum();
        let mut ids: Vec<usize> = bundle.clone();
        ids.sort_unstable();
        println!(
            "  torrent {}: files {ids:?}  (aggregate demand {lambda:.4}/s, {:.0} MB)",
            i + 1,
            size / 1_000.0
        );
    }
    println!();
    println!(
        "the optimizer keeps self-sustaining hits lean and packs the long \
         tail into bundles big enough to stay alive between reseedings."
    );
}
