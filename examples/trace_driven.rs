//! Trace-driven robustness (paper §4.3.4): replay a bursty, decaying
//! arrival pattern — the "new swarm" shape of Figure 7 — through the
//! simulator and check that the bundling conclusion survives the broken
//! Poisson assumption.
//!
//! ```text
//! cargo run --release --example trace_driven
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use swarmsys::queue::arrivals::nonhomogeneous_poisson;
use swarmsys::sim::trace::{mean_rate, resample_interarrivals};
use swarmsys::sim::{run_trace, Patience, PublisherProcess, ServiceModel, SimConfig};

fn main() {
    let horizon = 120_000.0;
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    for k in [1u32, 4] {
        let kf = k as f64;
        // A measured-looking pattern: a popularity wave decaying onto a
        // steady tail, mean rate ≈ K/60 peers/s.
        let base = nonhomogeneous_poisson(
            |t| (kf / 60.0) * (0.5 + 1.5 * (-t / 20_000.0).exp()),
            kf / 60.0 * 2.0,
            horizon,
            &mut rng,
        );
        let cfg = SimConfig {
            lambda: kf / 60.0, // ignored: arrivals come from the trace
            service: ServiceModel::Exponential { mean: 80.0 * kf },
            publisher: PublisherProcess::SingleOnOff {
                on_mean: 300.0,
                off_mean: 900.0,
                initially_on: true,
            },
            patience: Patience::Patient,
            linger_mean: None,
            coverage_threshold: 9,
            horizon,
            warmup: 2_000.0,
            seed: 7_000 + k as u64,
            record_timeline: false,
        };
        // Bootstrap three replications from the single "measured" trace.
        let mut mean_t = 0.0;
        let reps = 3;
        for _ in 0..reps {
            let replayed = resample_interarrivals(&base, &mut rng);
            mean_t += run_trace(&cfg, &replayed).mean_download_time() / reps as f64;
        }
        println!(
            "K={k}: trace mean rate {:.4}/s, mean download time {mean_t:.0} s",
            mean_rate(&base, horizon)
        );
    }
    println!();
    println!(
        "the K=4 bundle still beats the single file under bursty, decaying \
         arrivals — the paper's §4.3.4 robustness result."
    );
}
